// Thin adapters wrapping each synopsis backend behind AqpEngine, plus the
// registration of all built-ins. This file is the only place (outside unit
// tests) where the concrete systems are constructed; everything downstream
// goes through EngineRegistry::Create.

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "api/registry.h"
#include "baselines/rs.h"
#include "baselines/spn.h"
#include "baselines/srs.h"
#include "core/janus.h"
#include "core/multi.h"
#include "core/spt.h"
#include "persist/serde.h"
#include "util/invariants.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace janus {

namespace {

/// Reservoir sample footprint: the reservoir stores materialized tuples.
size_t ReservoirBytes(size_t sample_tuples) {
  return sample_tuples * sizeof(Tuple);
}

/// One background maintenance thread driving an engine's re-optimization
/// pipeline (reopt_mode=background): it sleeps until kicked, then runs `job`
/// until the job reports no more pending work. Kicks arriving while the job
/// runs coalesce into one more round — a kick is never lost. The owning
/// engine must construct it after the state the job touches and stop it (or
/// destroy it, declared last) before that state dies.
class MaintenanceThread {
 public:
  explicit MaintenanceThread(std::function<bool()> job)
      : job_(std::move(job)), thread_([this] { Loop(); }) {}

  ~MaintenanceThread() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
      cv_.NotifyAll();
    }
    thread_.join();
  }

  /// Wake the thread; safe from any thread, including inside the job.
  void Kick() {
    MutexLock lock(&mu_);
    work_ = true;
    cv_.NotifyAll();
  }

 private:
  void Loop() {
    for (;;) {
      {
        MutexLock lock(&mu_);
        while (!work_ && !stop_) cv_.Wait(&mu_);
        if (stop_) return;
        work_ = false;
      }
      while (job_()) {
      }
    }
  }

  std::function<bool()> job_;
  Mutex mu_;
  CondVar cv_;
  bool work_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Morsel-parallel execution context of one engine: the shared scan pool
/// capped at scan_threads workers (scan_threads=1 pins every scan serial),
/// with telemetry flowing into the engine's own counters.
scan::ExecContext MakeExec(const EngineConfig& c,
                           scan::ScanCounters* counters) {
  scan::ExecContext e;
  if (c.scan_threads != 1) e.pool = scan::SharedScanPool();
  e.max_workers = c.scan_threads > 0 ? static_cast<size_t>(c.scan_threads) : 0;
  e.parallel_min_rows = c.parallel_min_rows;
  e.counters = counters;
  return e;
}

JanusOptions MakeJanusOptions(const EngineConfig& c,
                              scan::ScanCounters* counters) {
  JanusOptions o;
  o.exec = MakeExec(c, counters);
  o.schema = c.schema;
  o.spec.agg_column = c.agg_column;
  o.spec.predicate_columns = c.predicate_columns;
  o.num_leaves = c.num_leaves;
  o.sample_rate = c.sample_rate;
  o.catchup_rate = c.catchup_rate;
  o.focus = c.focus;
  o.algorithm = c.algorithm;
  o.confidence = c.confidence;
  o.beta = c.beta;
  o.extra_tracked_columns = c.extra_tracked_columns;
  o.enable_triggers = c.enable_triggers;
  o.trigger_check_interval = c.trigger_check_interval;
  o.starvation_factor = c.starvation_factor;
  o.partial_repartition_psi = c.partial_repartition_psi;
  o.seed = c.seed;
  o.reopt_mode = c.reopt_mode == "background" ? ReoptMode::kBackground
                                              : ReoptMode::kBlocking;
  o.reopt_delta_tail = c.reopt_delta_tail;
  return o;
}

/// "janus": the full JanusAQP system of Sec. 4/5.
class JanusEngine : public AqpEngine {
 public:
  explicit JanusEngine(const EngineConfig& c)
      : impl_(MakeJanusOptions(c, &scan_counters_)) {
    if (impl_.options().reopt_mode == ReoptMode::kBackground) {
      // A trigger fire records a request and kicks the maintenance thread;
      // the thread drains requests through the three-stage pipeline, taking
      // rooms exactly like an external caller (so the exclusive fence is
      // only the pointer-swap adoption step).
      impl_.SetReoptNotify([this] { maint_->Kick(); });
      maint_ = std::make_unique<MaintenanceThread>(
          [this] { return RunBackgroundReopt(); });
    }
  }
  ~JanusEngine() override { maint_.reset(); }

  const char* name() const override { return "janus"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    impl_.LoadInitial(rows);
  }
  void InitializeImpl() override {
    impl_.Initialize();
    initialized_ = true;
  }
  void InsertImpl(const Tuple& t) override { impl_.Insert(t); }
  bool DeleteImpl(uint64_t id) override { return impl_.Delete(id); }
  QueryResult QueryImpl(const AggQuery& q) const override {
    return impl_.Query(q);
  }
  void RunCatchupToGoalImpl() override { impl_.RunCatchupToGoal(); }
  size_t StepCatchupImpl(size_t batch) override {
    return impl_.StepCatchup(batch);
  }
  void ReinitializeImpl() override { impl_.Reinitialize(); }

  EngineStats StatsImpl() const override {
    EngineStats s;
    s.engine = name();
    s.rows = impl_.table().size();
    s.sample_size = initialized_ ? impl_.dpt().sample_size() : 0;
    const JanusCounters& c = impl_.counters();
    s.inserts = c.inserts;
    s.deletes = c.deletes;
    s.repartitions = c.repartitions;
    s.partial_repartitions = c.partial_repartitions;
    s.partial_repartition_fallbacks = c.partial_repartition_fallbacks;
    s.trigger_checks = c.trigger_checks;
    s.trigger_fires = c.trigger_fires;
    s.reservoir_resamples = c.reservoir_resamples;
    s.background_reopts = c.background_reopts;
    s.background_discards = c.background_discards;
    s.delta_ops_replayed = c.delta_ops_replayed;
    s.catchup_processed = impl_.catchup_processed();
    s.catchup_processing_seconds = impl_.catchup_processing_seconds();
    s.last_reopt_seconds = c.last_reopt_seconds;
    s.last_blocking_seconds = c.last_blocking_seconds;
    s.archive_bytes = impl_.table().MemoryBytes();
    if (initialized_) {
      s.synopsis_bytes = impl_.dpt().MemoryBytes() +
                         ReservoirBytes(impl_.reservoir().size());
    }
    s.parallel_scans = scan_counters_.parallel_scans.load();
    s.serial_scans = scan_counters_.serial_scans.load();
    s.nested_serial_scans = scan_counters_.nested_serial_scans.load();
    s.stolen_morsels = scan_counters_.stolen_morsels.load();
    return s;
  }
  const DynamicTable* table() const override { return &impl_.table(); }
  const Dpt* synopsis() const override {
    return initialized_ ? &impl_.dpt() : nullptr;
  }

  void SaveState(persist::Writer* w) const override { impl_.SaveTo(w); }
  void LoadState(persist::Reader* r) override {
    impl_.LoadFrom(r);
    initialized_ = impl_.initialized();
  }

 protected:
  /// Replaces the base archive-only audit: JanusAqp audits the store plus
  /// the reservoir/synopsis cross-structure invariants.
  void CheckInvariantsImpl() const override { impl_.CheckInvariants(); }

  /// JanusAQP's maintenance path is thread-safe (per-leaf statistic locks +
  /// an internal table/reservoir mutex), so updates run concurrently.
  UpdateConcurrency update_concurrency() const override {
    return UpdateConcurrency::kConcurrent;
  }

 private:
  /// One pipeline round on the maintenance thread. Begin coexists with
  /// queries being fenced (update room), the build takes no room at all,
  /// and only the adoption swap is exclusive. Returns true to run again —
  /// trigger fires during the build coalesce into the next round.
  bool RunBackgroundReopt() {
    {
      UpdateRoom room(rooms());
      if (!impl_.ReoptRequested()) return false;
      if (!impl_.BeginBackgroundReopt()) return false;
    }
    impl_.BuildBackgroundReopt();
    {
      ExclusiveRoom room(rooms());
      impl_.FinishBackgroundReopt();
    }
    return true;
  }

  scan::ScanCounters scan_counters_;
  JanusAqp impl_;
  bool initialized_ = false;
  /// Declared last: its thread touches impl_ and rooms(), so it must die
  /// first (the destructor also resets it explicitly for clarity).
  std::unique_ptr<MaintenanceThread> maint_;
};

/// "multi": one pooled sample, one tree per query template (Sec. 5.5).
class MultiEngine : public AqpEngine {
 public:
  explicit MultiEngine(const EngineConfig& c)
      : impl_(MakeJanusOptions(c, &scan_counters_)), inserts_(0), deletes_(0) {
    SynopsisSpec spec;
    spec.agg_column = c.agg_column;
    spec.predicate_columns = c.predicate_columns;
    impl_.AddTemplate(spec);
    if (c.reopt_mode == "background") {
      maint_ = std::make_unique<MaintenanceThread>(
          [this] { return RunBackgroundRebuild(); });
    }
  }
  ~MultiEngine() override { maint_.reset(); }

  const char* name() const override { return "multi"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    impl_.LoadInitial(rows);
  }
  void InitializeImpl() override {
    impl_.Initialize();
    initialized_ = true;
  }
  void InsertImpl(const Tuple& t) override {
    impl_.Insert(t);
    ++inserts_;
  }
  bool DeleteImpl(uint64_t id) override {
    const bool ok = impl_.Delete(id);
    if (ok) ++deletes_;
    return ok;
  }
  QueryResult QueryImpl(const AggQuery& q) const override {
    // Template discovery mutates the manager; the engine stays logically
    // const (a cache fill), hence the mutable member. Concurrent readers
    // are allowed by the AqpEngine contract, so discovery takes the write
    // lock while established-template lookups share a read lock.
    {
      ReaderMutexLock lock(&template_mu_);
      const int idx = impl_.TemplateFor(q.predicate_columns);
      if (idx >= 0) return impl_.dpt(idx).Query(q);
    }
    WriterMutexLock lock(&template_mu_);
    return impl_.Query(q);
  }
  std::vector<QueryResult> QueryBatchImpl(
      const std::vector<AggQuery>& queries,
      ThreadPool* pool) const override {
    // Materialize any missing templates serially first so the fan-out only
    // performs read-only tree lookups.
    {
      WriterMutexLock lock(&template_mu_);
      for (const AggQuery& q : queries) {
        if (impl_.TemplateFor(q.predicate_columns) < 0) {
          SynopsisSpec spec;
          spec.agg_column = q.agg_column;
          spec.predicate_columns = q.predicate_columns;
          impl_.AddTemplate(spec);
        }
      }
    }
    return AqpEngine::QueryBatchImpl(queries, pool);
  }
  void RunCatchupToGoalImpl() override { impl_.RunCatchupToGoal(); }

  /// Blocking mode rebuilds every template inline (under the exclusive room
  /// the base class already holds). Background mode only kicks the
  /// maintenance thread: the call returns immediately and the per-template
  /// side trees are adopted when the pipeline finishes.
  void ReinitializeImpl() override {
    if (maint_) {
      maint_->Kick();
      return;
    }
    impl_.Rebuild();
    ++repartitions_;
  }

  EngineStats StatsImpl() const override {
    // Shares template_mu_ with Query(): on-demand template discovery may
    // reallocate the template list under a concurrent reader.
    ReaderMutexLock lock(&template_mu_);
    EngineStats s;
    s.engine = name();
    s.rows = impl_.table().size();
    s.sample_size = initialized_ ? impl_.reservoir().size() : 0;
    s.num_templates = static_cast<int>(impl_.num_templates());
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.repartitions = repartitions_;
    s.background_reopts = bg_rebuilds_;
    s.delta_ops_replayed = delta_replayed_;
    s.last_reopt_seconds = last_reopt_seconds_;
    s.last_blocking_seconds = last_blocking_seconds_;
    s.archive_bytes = impl_.table().MemoryBytes();
    if (initialized_) {
      s.synopsis_bytes = ReservoirBytes(impl_.reservoir().size());
      for (size_t i = 0; i < impl_.num_templates(); ++i) {
        s.synopsis_bytes += impl_.dpt(static_cast<int>(i)).MemoryBytes();
      }
    }
    s.parallel_scans = scan_counters_.parallel_scans.load();
    s.serial_scans = scan_counters_.serial_scans.load();
    s.nested_serial_scans = scan_counters_.nested_serial_scans.load();
    s.stolen_morsels = scan_counters_.stolen_morsels.load();
    return s;
  }
  const DynamicTable* table() const override { return &impl_.table(); }
  const Dpt* synopsis() const override {
    ReaderMutexLock lock(&template_mu_);
    return initialized_ && impl_.num_templates() > 0 ? &impl_.dpt(0) : nullptr;
  }

  void SaveState(persist::Writer* w) const override {
    ReaderMutexLock lock(&template_mu_);
    w->Bool(initialized_);
    w->U64(inserts_);
    w->U64(deletes_);
    w->U64(repartitions_);
    w->U64(bg_rebuilds_);
    w->U64(delta_replayed_);
    impl_.SaveTo(w);
  }
  void LoadState(persist::Reader* r) override {
    WriterMutexLock lock(&template_mu_);
    initialized_ = r->Bool();
    inserts_ = r->U64();
    deletes_ = r->U64();
    repartitions_ = r->U64();
    bg_rebuilds_ = r->U64();
    delta_replayed_ = r->U64();
    impl_.LoadFrom(r);
  }

 protected:
  void CheckInvariantsImpl() const override {
    ReaderMutexLock lock(&template_mu_);
    impl_.table().store().CheckInvariants();
    if (!initialized_) return;
    impl_.reservoir().CheckInvariants();
    // Every template mirrors the one pooled reservoir; sizes must agree.
    for (size_t i = 0; i < impl_.num_templates(); ++i) {
      const Dpt& d = impl_.dpt(static_cast<int>(i));
      d.CheckInvariants();
      invariants::Require(
          d.sample_size() == impl_.reservoir().size(), "MultiEngine",
          "template " + std::to_string(i) + " mirrors " +
              std::to_string(d.sample_size()) + " samples but the pooled " +
              "reservoir holds " + std::to_string(impl_.reservoir().size()));
    }
  }

 private:
  /// One pipeline round for the multi-template manager. Begin and Finish
  /// are short and take the exclusive room (multi updates are base-
  /// serialized, not internally locked, so the update room alone would not
  /// exclude a concurrent updater); the per-template optimize + populate —
  /// the dominant cost — runs with no room at all.
  bool RunBackgroundRebuild() {
    Timer total;
    {
      ExclusiveRoom room(rooms());
      if (!impl_.BeginBackgroundRebuild()) return false;
    }
    impl_.BuildBackgroundRebuild();
    {
      ExclusiveRoom room(rooms());
      Timer blocking;
      uint64_t replayed = 0;
      if (impl_.FinishBackgroundRebuild(&replayed)) {
        ++repartitions_;
        ++bg_rebuilds_;
        delta_replayed_ += replayed;
        last_blocking_seconds_ = blocking.ElapsedSeconds();
        last_reopt_seconds_ = total.ElapsedSeconds();
      }
    }
    return false;  // one rebuild per kick; later kicks coalesce
  }

  scan::ScanCounters scan_counters_;
  mutable MultiTemplateJanus impl_;
  /// Guards impl_'s template list (discovery appends; readers index it).
  /// impl_ itself cannot carry GUARDED_BY: update paths mutate it under the
  /// engine's update room instead of this lock.
  mutable SharedMutex template_mu_;
  bool initialized_ = false;
  uint64_t inserts_;
  uint64_t deletes_;
  uint64_t repartitions_ = 0;
  uint64_t bg_rebuilds_ = 0;
  uint64_t delta_replayed_ = 0;
  double last_reopt_seconds_ = 0;
  double last_blocking_seconds_ = 0;
  /// Declared last: its thread touches impl_ and rooms().
  std::unique_ptr<MaintenanceThread> maint_;
};

/// "rs": uniform reservoir sample over the whole table.
class RsEngine : public AqpEngine {
 public:
  explicit RsEngine(const EngineConfig& c) {
    RsOptions o;
    o.schema = c.schema;
    o.sample_rate = c.sample_rate;
    o.confidence = c.confidence;
    o.seed = c.seed;
    impl_ = std::make_unique<ReservoirBaseline>(o);
  }

  const char* name() const override { return "rs"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    impl_->LoadInitial(rows);
  }
  void InitializeImpl() override { impl_->Initialize(); }
  void InsertImpl(const Tuple& t) override {
    impl_->Insert(t);
    ++inserts_;
  }
  bool DeleteImpl(uint64_t id) override {
    const bool ok = impl_->Delete(id);
    if (ok) ++deletes_;
    return ok;
  }
  QueryResult QueryImpl(const AggQuery& q) const override {
    return impl_->Query(q);
  }

  EngineStats StatsImpl() const override {
    EngineStats s;
    s.engine = name();
    s.rows = impl_->table().size();
    s.sample_size = impl_->sample_size();
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.archive_bytes = impl_->table().MemoryBytes();
    s.synopsis_bytes = ReservoirBytes(impl_->sample_size());
    return s;
  }
  const DynamicTable* table() const override { return &impl_->table(); }

  void SaveState(persist::Writer* w) const override {
    w->U64(inserts_);
    w->U64(deletes_);
    impl_->SaveTo(w);
  }
  void LoadState(persist::Reader* r) override {
    inserts_ = r->U64();
    deletes_ = r->U64();
    impl_->LoadFrom(r);
  }

 protected:
  void CheckInvariantsImpl() const override { impl_->CheckInvariants(); }

 private:
  std::unique_ptr<ReservoirBaseline> impl_;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
};

/// "srs": stratified reservoir with frozen equal-depth strata.
class SrsEngine : public AqpEngine {
 public:
  explicit SrsEngine(const EngineConfig& c) {
    SrsOptions o;
    o.schema = c.schema;
    o.num_strata = c.num_strata > 0 ? c.num_strata : c.num_leaves;
    o.predicate_column =
        c.predicate_columns.empty() ? 0 : c.predicate_columns.front();
    o.sample_rate = c.sample_rate;
    o.confidence = c.confidence;
    o.seed = c.seed;
    o.exec = MakeExec(c, &scan_counters_);
    impl_ = std::make_unique<StratifiedReservoirBaseline>(o);
  }

  const char* name() const override { return "srs"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    impl_->LoadInitial(rows);
  }
  void InitializeImpl() override { impl_->Initialize(); }
  void InsertImpl(const Tuple& t) override {
    impl_->Insert(t);
    ++inserts_;
  }
  bool DeleteImpl(uint64_t id) override {
    const bool ok = impl_->Delete(id);
    if (ok) ++deletes_;
    return ok;
  }
  QueryResult QueryImpl(const AggQuery& q) const override {
    return impl_->Query(q);
  }

  EngineStats StatsImpl() const override {
    EngineStats s;
    s.engine = name();
    s.rows = impl_->table().size();
    s.sample_size = impl_->sample_size();
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.archive_bytes = impl_->table().MemoryBytes();
    s.synopsis_bytes = ReservoirBytes(impl_->sample_size());
    s.parallel_scans = scan_counters_.parallel_scans.load();
    s.serial_scans = scan_counters_.serial_scans.load();
    s.nested_serial_scans = scan_counters_.nested_serial_scans.load();
    s.stolen_morsels = scan_counters_.stolen_morsels.load();
    return s;
  }
  const DynamicTable* table() const override { return &impl_->table(); }

  void SaveState(persist::Writer* w) const override {
    w->U64(inserts_);
    w->U64(deletes_);
    impl_->SaveTo(w);
  }
  void LoadState(persist::Reader* r) override {
    inserts_ = r->U64();
    deletes_ = r->U64();
    impl_->LoadFrom(r);
  }

 protected:
  void CheckInvariantsImpl() const override { impl_->CheckInvariants(); }

 private:
  scan::ScanCounters scan_counters_;
  std::unique_ptr<StratifiedReservoirBaseline> impl_;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
};

/// "spn": the learned-model baseline. Owns the archive, (re)trains the model
/// on a uniform train_fraction sample of the live table; insertions and
/// deletions only move the population scale until the next Reinitialize()
/// (DeepDB's warm-start behaviour).
class SpnEngine : public AqpEngine {
 public:
  explicit SpnEngine(const EngineConfig& c)
      : cfg_(c),
        exec_(MakeExec(c, &scan_counters_)),
        table_(c.schema),
        rng_(c.seed) {}

  const char* name() const override { return "spn"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    for (const Tuple& t : rows) table_.Insert(t);
  }
  void InitializeImpl() override { Retrain(); }
  void ReinitializeImpl() override { Retrain(); }
  void InsertImpl(const Tuple& t) override {
    table_.Insert(t);
    ++inserts_;
    if (spn_) spn_->set_population(table_.size());
  }
  bool DeleteImpl(uint64_t id) override {
    if (!table_.Delete(id)) return false;
    ++deletes_;
    if (spn_) spn_->set_population(table_.size());
    return true;
  }
  QueryResult QueryImpl(const AggQuery& q) const override {
    return spn_ ? spn_->Query(q) : QueryResult{};
  }

  EngineStats StatsImpl() const override {
    EngineStats s;
    s.engine = name();
    s.rows = table_.size();
    s.sample_size = last_train_size_;
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.build_seconds = spn_ ? spn_->train_seconds() : 0;
    s.archive_bytes = table_.MemoryBytes();
    s.synopsis_bytes = spn_ ? spn_->MemoryBytes() : 0;
    s.parallel_scans = scan_counters_.parallel_scans.load();
    s.serial_scans = scan_counters_.serial_scans.load();
    s.nested_serial_scans = scan_counters_.nested_serial_scans.load();
    s.stolen_morsels = scan_counters_.stolen_morsels.load();
    return s;
  }
  const DynamicTable* table() const override { return &table_; }

  void SaveState(persist::Writer* w) const override {
    table_.SaveTo(w);
    rng_.SaveTo(w);
    w->Size(last_train_size_);
    w->U64(inserts_);
    w->U64(deletes_);
    w->Bool(spn_ != nullptr);
    if (spn_) spn_->SaveTo(w);
  }
  void LoadState(persist::Reader* r) override {
    table_.LoadFrom(r);
    rng_.LoadFrom(r);
    last_train_size_ = r->Size();
    inserts_ = r->U64();
    deletes_ = r->U64();
    if (r->Bool()) {
      SpnOptions o;
      o.confidence = cfg_.confidence;
      spn_ = std::make_unique<Spn>(o, std::vector<int>{});
      spn_->LoadFrom(r);
    } else {
      spn_.reset();
    }
  }

 protected:
  void CheckInvariantsImpl() const override {
    AqpEngine::CheckInvariantsImpl();  // archive store
    // Inserts/deletes only move the model's population scale; it must track
    // the live row count exactly until the next retrain.
    if (spn_) {
      invariants::Require(
          spn_->population() == static_cast<double>(table_.size()),
          "SpnEngine",
          "model population " + std::to_string(spn_->population()) +
              " out of sync with the archive's " +
              std::to_string(table_.size()) + " rows");
    }
  }

 private:
  std::vector<int> ModelColumns() const {
    if (!cfg_.model_columns.empty()) return cfg_.model_columns;
    std::vector<int> cols = cfg_.predicate_columns;
    cols.push_back(cfg_.agg_column);
    cols.insert(cols.end(), cfg_.extra_tracked_columns.begin(),
                cfg_.extra_tracked_columns.end());
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    return cols;
  }

  void Retrain() {
    SpnOptions o;
    o.confidence = cfg_.confidence;
    o.seed = rng_.Next();
    spn_ = std::make_unique<Spn>(o, ModelColumns());
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(cfg_.train_fraction *
                               static_cast<double>(table_.size())));
    const std::vector<Tuple> train = table_.SampleUniform(&rng_, k, exec_);
    last_train_size_ = train.size();
    spn_->Train(train, table_.size());
  }

  EngineConfig cfg_;
  scan::ScanCounters scan_counters_;
  scan::ExecContext exec_;
  DynamicTable table_;
  std::unique_ptr<Spn> spn_;
  Rng rng_;
  size_t last_train_size_ = 0;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
};

/// "spt": the static PASS partition tree (Sec. 2.3). Statistics are exact at
/// build time and folded forward on updates, but the partitioning and the
/// leaf strata never move — the frozen baseline Fig. 10 contrasts JanusAQP
/// against. Reinitialize() rebuilds from the current archive.
class SptEngine : public AqpEngine {
 public:
  explicit SptEngine(const EngineConfig& c)
      : cfg_(c), exec_(MakeExec(c, &scan_counters_)), table_(c.schema) {}

  const char* name() const override { return "spt"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    for (const Tuple& t : rows) table_.Insert(t);
  }
  void InitializeImpl() override { Rebuild(); }
  void ReinitializeImpl() override { Rebuild(); }
  void InsertImpl(const Tuple& t) override {
    table_.Insert(t);
    ++inserts_;
    if (dpt_) dpt_->ApplyInsert(t);
  }
  bool DeleteImpl(uint64_t id) override {
    const std::optional<Tuple> p = table_.Find(id);
    if (!p.has_value()) return false;
    const Tuple t = *p;
    table_.Delete(id);
    ++deletes_;
    if (dpt_) dpt_->ApplyDelete(t);
    return true;
  }
  QueryResult QueryImpl(const AggQuery& q) const override {
    return dpt_ ? dpt_->Query(q) : QueryResult{};
  }

  EngineStats StatsImpl() const override {
    EngineStats s;
    s.engine = name();
    s.rows = table_.size();
    s.sample_size = dpt_ ? dpt_->sample_size() : 0;
    s.inserts = inserts_;
    s.deletes = deletes_;
    s.build_seconds = build_.total_seconds;
    s.partition_seconds = build_.partition_seconds;
    s.archive_bytes = table_.MemoryBytes();
    s.synopsis_bytes = dpt_ ? dpt_->MemoryBytes() : 0;
    s.parallel_scans = scan_counters_.parallel_scans.load();
    s.serial_scans = scan_counters_.serial_scans.load();
    s.nested_serial_scans = scan_counters_.nested_serial_scans.load();
    s.stolen_morsels = scan_counters_.stolen_morsels.load();
    return s;
  }
  const DynamicTable* table() const override { return &table_; }
  const Dpt* synopsis() const override { return dpt_.get(); }

  void SaveState(persist::Writer* w) const override {
    table_.SaveTo(w);
    w->U64(inserts_);
    w->U64(deletes_);
    w->F64(build_.partition_seconds);
    w->F64(build_.total_seconds);
    w->F64(build_.achieved_error);
    w->Bool(dpt_ != nullptr);
    if (dpt_) dpt_->SaveTo(w);
  }
  void LoadState(persist::Reader* r) override {
    table_.LoadFrom(r);
    inserts_ = r->U64();
    deletes_ = r->U64();
    build_.synopsis.reset();
    build_.partition_seconds = r->F64();
    build_.total_seconds = r->F64();
    build_.achieved_error = r->F64();
    if (r->Bool()) {
      // The same DptOptions mapping BuildSpt applies to SptOptions.
      const SptOptions o = MakeOpts();
      DptOptions dopts;
      dopts.spec = o.spec;
      dopts.sample_rate = o.sample_rate;
      dopts.minmax_k = o.minmax_k;
      dopts.confidence = o.confidence;
      dopts.delta = o.delta;
      dpt_ = std::make_unique<Dpt>(dopts, PartitionTreeSpec{});
      dpt_->LoadFrom(r);
    } else {
      dpt_.reset();
    }
  }

 protected:
  void CheckInvariantsImpl() const override {
    AqpEngine::CheckInvariantsImpl();  // archive store
    if (dpt_) dpt_->CheckInvariants();
  }

 private:
  SptOptions MakeOpts() const {
    SptOptions o;
    o.spec.agg_column = cfg_.agg_column;
    o.spec.predicate_columns = cfg_.predicate_columns;
    o.num_leaves = cfg_.num_leaves;
    o.focus = cfg_.focus;
    o.sample_rate = cfg_.sample_rate;
    o.algorithm = cfg_.algorithm;
    o.confidence = cfg_.confidence;
    o.seed = cfg_.seed;
    o.exec = exec_;
    return o;
  }

  void Rebuild() {
    build_ = BuildSpt(table_.store(), MakeOpts());
    dpt_ = std::move(build_.synopsis);
  }

  EngineConfig cfg_;
  scan::ScanCounters scan_counters_;
  scan::ExecContext exec_;
  DynamicTable table_;
  std::unique_ptr<Dpt> dpt_;
  SptBuildResult build_;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
};

}  // namespace

void RegisterBuiltinEngines(EngineRegistry* registry) {
  registry->Register("janus", "JanusAQP: DPT + catch-up + triggers",
                     [](const EngineConfig& c) {
                       return std::make_unique<JanusEngine>(c);
                     });
  registry->Register("multi", "multi-template manager, one tree per template",
                     [](const EngineConfig& c) {
                       return std::make_unique<MultiEngine>(c);
                     });
  registry->Register("rs", "uniform reservoir-sampling baseline",
                     [](const EngineConfig& c) {
                       return std::make_unique<RsEngine>(c);
                     });
  registry->Register("srs", "stratified reservoir baseline, frozen strata",
                     [](const EngineConfig& c) {
                       return std::make_unique<SrsEngine>(c);
                     });
  registry->Register("spn", "mini sum-product network (DeepDB stand-in)",
                     [](const EngineConfig& c) {
                       return std::make_unique<SpnEngine>(c);
                     });
  registry->Register("spt", "static PASS partition tree, never re-optimized",
                     [](const EngineConfig& c) {
                       return std::make_unique<SptEngine>(c);
                     });
}

}  // namespace janus
