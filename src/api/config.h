#ifndef JANUS_API_CONFIG_H_
#define JANUS_API_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/spt.h"
#include "data/exec_context.h"
#include "data/schema.h"

namespace janus {

/// The one flag parser shared by every bench, example and tool. Accepts
/// "key=value", "--key value" and "--key=value" tokens interchangeably
/// (leading dashes are stripped, so "--rows 100" and "rows=100" are the same
/// argument). Later occurrences of a key win.
///
/// Numeric getters parse strictly (full-token, errno-checked, like
/// scan::ParseScanThreads): negative values for unsigned getters, trailing
/// garbage ("10x"), non-numbers and out-of-range values all return the
/// caller's default and warn once per key on stderr — "rows=-1" no longer
/// wraps to 2^64-1 silently.
class ArgMap {
 public:
  ArgMap() = default;
  ArgMap(int argc, char** argv);
  /// Parse pre-split "key=value" (or bare "key" => "1") tokens — the
  /// spec-file and wire-config paths reuse the CLI parsing rules verbatim.
  explicit ArgMap(const std::vector<std::string>& tokens);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& def) const;
  size_t GetSize(const std::string& key, size_t def) const;
  uint64_t GetUint64(const std::string& key, uint64_t def) const;
  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  /// "1"/"true"/"on"/"yes" => true; "0"/"false"/"off"/"no" => false.
  bool GetBool(const std::string& key, bool def) const;
  /// Comma-separated integer list, e.g. "pred=0,5".
  std::vector<int> GetIntList(const std::string& key,
                              std::vector<int> def) const;

  // Fail-fast variants for parsers that must reject malformed input instead
  // of warning and defaulting (WorkloadSpec::FromFile): absent keys leave
  // *out untouched and return true; present-but-malformed values return
  // false (same strict full-token parse as the Get* family, no warning).
  bool TryGetSize(const std::string& key, size_t* out) const;
  bool TryGetInt(const std::string& key, int* out) const;
  bool TryGetDouble(const std::string& key, double* out) const;
  bool TryGetBool(const std::string& key, bool* out) const;

  /// All keys present, sorted (map order).
  std::vector<std::string> Keys() const;

  const std::map<std::string, std::string>& entries() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

/// Unified configuration every engine in the registry is created from. One
/// struct covers all six backends; each adapter reads the subset it
/// understands and ignores the rest, so the same config can be replayed
/// against any engine name (the conformance suite does exactly that).
///
/// CLI keys (via FromArgs): engine, agg, pred, tracked, columns, leaves,
/// sample_rate (alias alpha), catchup_rate (alias catchup), confidence,
/// focus, algorithm, triggers, beta, check_interval, starvation, psi,
/// reopt_mode, reopt_delta_tail, strata, train_fraction, shards,
/// scan_threads, parallel_min_rows, snapshot_path, snapshot_every, seed.
struct EngineConfig {
  /// Registry name: "janus", "multi", "rs", "srs", "spn", "spt", or a
  /// composed "sharded:<inner>" key.
  std::string engine = "janus";

  /// Archive schema. When set, every backend's table allocates exactly
  /// schema.num_columns() columns; empty falls back to kMaxColumns-wide
  /// storage (safe for schema-less callers).
  Schema schema;

  // --- query template -------------------------------------------------------
  int agg_column = 1;
  std::vector<int> predicate_columns = {0};
  /// Additional aggregate columns with maintained statistics (Sec. 5.5).
  std::vector<int> extra_tracked_columns;
  /// Columns a learned model (SPN) covers; empty derives the set from the
  /// template columns above.
  std::vector<int> model_columns;

  // --- synopsis shape -------------------------------------------------------
  int num_leaves = 128;
  double sample_rate = 0.01;
  double catchup_rate = 0.10;
  double confidence = 0.95;
  AggFunc focus = AggFunc::kSum;
  PartitionAlgorithm algorithm = PartitionAlgorithm::kBinarySearch;

  // --- re-partitioning triggers (janus) ------------------------------------
  bool enable_triggers = true;
  double beta = 10.0;
  uint64_t trigger_check_interval = 64;
  double starvation_factor = 0.25;
  int partial_repartition_psi = 0;
  /// How trigger re-partitions execute: "blocking" runs them inline on the
  /// update path (historical behavior); "background" records a request and
  /// a per-engine maintenance thread drives the off-to-the-side build +
  /// pointer-swap adoption pipeline (janus; multi routes Reinitialize()
  /// through it).
  std::string reopt_mode = "blocking";
  /// Background pipeline: the build keeps pre-draining the double-applied
  /// update buffer until at most this many ops remain for the exclusive
  /// adoption step.
  size_t reopt_delta_tail = 1024;

  // --- baselines ------------------------------------------------------------
  /// Strata count of the SRS baseline; 0 means "use num_leaves".
  int num_strata = 0;
  /// Fraction of the live table a learned model (re)trains on.
  double train_fraction = 0.10;

  // --- sharding ("sharded:<inner>" engines) ---------------------------------
  /// Number of hash shards, each with its own inner engine and maintenance
  /// thread. Ignored by non-sharded engines.
  int num_shards = 4;

  // --- parallel scan execution ----------------------------------------------
  /// Worker cap for morsel-parallel archival scans (exact initialization,
  /// catch-up batches, strata construction): 0 = all shared-pool threads
  /// (hardware concurrency / JANUS_SCAN_THREADS), 1 = serial, N = at most N
  /// workers per scan.
  int scan_threads = 0;
  /// Cost cutoff: scans under this many rows stay serial.
  size_t parallel_min_rows = scan::kDefaultParallelMinRows;

  // --- snapshot persistence -------------------------------------------------
  /// Where EngineDriver writes periodic snapshots (AqpEngine::Save format);
  /// empty disables automatic snapshotting.
  std::string snapshot_path;
  /// Data records (inserts + deletes) consumed between automatic snapshots;
  /// 0 disables. Requires snapshot_path.
  uint64_t snapshot_every = 0;

  uint64_t seed = 42;

  /// One entry of the engine-config key registry: the CLI/wire key plus a
  /// one-line summary (the README config table and the serving tier's
  /// config-echo response are generated from the same rows).
  struct KeyInfo {
    const char* key;
    const char* summary;
  };

  /// Every key FromArgs understands (aliases included), in presentation
  /// order. The single source of truth for the unknown-key error message,
  /// the README table and the wire-level config echo.
  static const std::vector<KeyInfo>& KnownKeys();

  /// Parse from shared CLI args. Keys that are neither in KnownKeys() nor
  /// in `extra_known` (the caller's own flags — benches pass "rows" etc.)
  /// fail fast with an ApiException(kUnknownConfigKey) listing every
  /// offender, with a did-you-mean suggestion for near-misses: a typo like
  /// scan_thread=8 aborts the run instead of silently configuring nothing.
  static EngineConfig FromArgs(const ArgMap& args,
                               const std::vector<std::string>& extra_known = {});

  /// Canonical "key=value ..." rendering (logging / reproducibility).
  std::string ToString() const;
};

/// Names for AggFunc / PartitionAlgorithm config values ("sum", "bs", ...).
AggFunc ParseAggFunc(const std::string& name, AggFunc def);
PartitionAlgorithm ParsePartitionAlgorithm(const std::string& name,
                                           PartitionAlgorithm def);
const char* PartitionAlgorithmName(PartitionAlgorithm a);

}  // namespace janus

#endif  // JANUS_API_CONFIG_H_
