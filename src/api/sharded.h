#ifndef JANUS_API_SHARDED_H_
#define JANUS_API_SHARDED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "util/thread_pool.h"

namespace janus {

/// Shard an id onto [0, num_shards) with a splitmix64-style bit mixer, so
/// sequential ids (the generators emit 0..n-1) still spread uniformly.
size_t ShardIndexForId(uint64_t id, size_t num_shards);

/// Merge per-shard answers to the same query into one pooled estimator.
/// Shards partition the population, and each shard's synopsis is built from
/// an independent sample, so stratified-estimator algebra applies
/// (Sec. 4.4.1 carried one level up):
///   SUM/COUNT: estimates and variances add; the merged CI half-width is
///     sqrt(sum ci_i^2), which equals z*sqrt(sum var_i) for any backend that
///     reports ci = z*sqrt(var) — no z round-trip needed.
///   AVG: a count-weighted mean of the shard means, weights w_i = c_i / C
///     from `shard_counts` (the shards' COUNT estimates for the same
///     predicate); variances scale by w_i^2.
///   MIN/MAX: order statistics don't pool; the merged estimate is the
///     min/max over shards with a non-zero count estimate, the CI the widest
///     contributing one.
/// `shard_counts` may be empty for SUM/COUNT; it must be per-shard COUNT
/// estimates for AVG/MIN/MAX. `exact` survives only if every contributing
/// shard was exact.
QueryResult MergeShardResults(AggFunc func,
                              const std::vector<QueryResult>& parts,
                              const std::vector<double>& shard_counts);

/// Horizontally sharded engine: hash-partitions tuples by id across N inner
/// engines (any registered backend) and pools their answers. Each shard owns
/// a maintenance thread fed by a bounded MPSC queue, so Insert() is an
/// enqueue — this is the first concurrent ingest path that works for *every*
/// backend, including the single-threaded baselines, because a shard's
/// engine is only ever touched by its own maintenance thread (writes) or
/// under the shard's reader lock (queries).
///
/// Thread-safety contract (stronger than base AqpEngine):
///  - Insert()/Delete() may be called from any number of threads.
///  - Query()/QueryBatch()/Stats() may run concurrently with updates: each
///    fan-out first waits at the shard's quiesce point (every update
///    enqueued before the call is applied), then reads under the shard's
///    shared lock. Callers get read-your-writes without external quiescing.
///  - Delete() is synchronous (quiesces the target shard first) so its
///    not-live return value stays accurate.
///
/// Registered under composed keys ("sharded:janus", "sharded:rs", ...) with
/// the shard count taken from EngineConfig::num_shards ("shards=N").
/// table()/synopsis() return nullptr: the archive lives in the shards
/// (Stats() aggregates rows across them).
class ShardedEngine : public AqpEngine {
 public:
  /// Builds `config.num_shards` inner engines of registered name
  /// `inner_name`, each from a copy of `config` with a decorrelated seed.
  ShardedEngine(std::string inner_name, const EngineConfig& config);
  ~ShardedEngine() override;

  const char* name() const override { return name_.c_str(); }

  /// Snapshot persistence: each shard is captured at its quiesce point under
  /// its writer lock (every update enqueued before the call is applied
  /// first), then serialized in shard order. With a single producer —
  /// EngineDriver replaying a broker stream — the snapshot is an exact cut
  /// of the consumed prefix; with concurrent producers it is a consistent
  /// per-shard cut. LoadState requires the engine to have been created with
  /// the same shard count and inner backend.
  void SaveState(persist::Writer* w) const override;
  void LoadState(persist::Reader* r) override;

  size_t num_shards() const { return shards_.size(); }
  /// Inner engine of one shard (test introspection; not quiesced).
  const AqpEngine& shard_engine(size_t shard) const;

 protected:
  /// The shards provide all synchronization (per-shard quiesce points +
  /// reader/writer locks); the base-class rooms are bypassed entirely.
  UpdateConcurrency update_concurrency() const override {
    return UpdateConcurrency::kInternal;
  }

  void LoadInitialImpl(const std::vector<Tuple>& rows) override;
  void InitializeImpl() override;
  void InsertImpl(const Tuple& t) override;
  bool DeleteImpl(uint64_t id) override;
  QueryResult QueryImpl(const AggQuery& q) const override;
  std::vector<QueryResult> QueryBatchImpl(const std::vector<AggQuery>& queries,
                                          ThreadPool* pool) const override;
  void RunCatchupToGoalImpl() override;
  size_t StepCatchupImpl(size_t batch) override;
  void ReinitializeImpl() override;
  EngineStats StatsImpl() const override;

  /// Quiesces each shard, audits its inner engine, and checks shard
  /// disjointness: every archived tuple id must hash to the shard holding it
  /// (otherwise id-addressed deletes and fan-out queries would miss rows).
  void CheckInvariantsImpl() const override;

 private:
  struct Shard;

  /// Run fn(shard_index) for every shard on the fan-out pool and wait.
  void ForEachShardParallel(const std::function<void(size_t)>& fn) const;

  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Fan-out pool for queries / initialization, one thread per shard
  /// (distinct from the per-shard maintenance threads).
  mutable ThreadPool pool_;
};

/// Registers "sharded:<name>" for every non-sharded engine currently in
/// `registry`. Called once on the global registry right after the built-ins.
void RegisterShardedEngines(EngineRegistry* registry);

}  // namespace janus

#endif  // JANUS_API_SHARDED_H_
