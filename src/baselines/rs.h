#ifndef JANUS_BASELINES_RS_H_
#define JANUS_BASELINES_RS_H_

#include <memory>

#include "core/dpt.h"
#include "data/table.h"
#include "sampling/reservoir.h"

namespace janus {

/// Options for the reservoir-sampling baseline (Sec. 6.1.3).
struct RsOptions {
  /// Archive schema (empty falls back to kMaxColumns-wide storage).
  Schema schema;
  double sample_rate = 0.01;
  double confidence = 0.95;
  uint64_t seed = 17;
  /// Morsel-parallel execution of the reservoir (re)fills: index draws stay
  /// serial (persisted RNG stream unchanged), row materialization fans out.
  scan::ExecContext exec;
};

/// Reservoir Sampling (RS) baseline: a uniform sample of the whole table
/// maintained with the AQUA insert/delete variant [16]; queries scan the
/// sample (hence the latency that grows with the sample size in Table 2).
class ReservoirBaseline {
 public:
  explicit ReservoirBaseline(const RsOptions& opts);

  void LoadInitial(const std::vector<Tuple>& rows);
  /// Size the reservoir at 2 * rate * |D| and fill it from the archive.
  void Initialize();

  void Insert(const Tuple& t);
  bool Delete(uint64_t id);

  QueryResult Query(const AggQuery& q) const;

  const DynamicTable& table() const { return table_; }
  size_t sample_size() const {
    return reservoir_ ? reservoir_->size() : 0;
  }

  /// Snapshot persistence: archive, reservoir (contents + RNG) and the
  /// system RNG.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: the archive store, the reservoir's own invariants,
  /// and liveness (every sampled id still in the table). Throws
  /// InvariantViolation on inconsistency.
  void CheckInvariants() const;

 private:
  RsOptions opts_;
  DynamicTable table_;
  std::unique_ptr<DynamicReservoir> reservoir_;
  Rng rng_;
};

}  // namespace janus

#endif  // JANUS_BASELINES_RS_H_
