#ifndef JANUS_BASELINES_SPN_H_
#define JANUS_BASELINES_SPN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dpt.h"
#include "data/schema.h"
#include "data/workload.h"

namespace janus {

/// Options for the mini Sum-Product-Network baseline — the DeepDB stand-in
/// (Sec. 6.1.3; see DESIGN.md "Substitutions"). The structure-learning
/// recursion mirrors DeepDB's: alternate row clustering (k-means, k = 2)
/// and column decomposition via the Randomized Dependence Coefficient, with
/// per-column histogram leaves.
struct SpnOptions {
  size_t min_instances = 128;  ///< stop splitting below this many rows
  int max_depth = 12;
  int kmeans_iters = 20;
  /// RDC (randomized dependence coefficient) above which columns stay in a
  /// joint group; DeepDB's column-decomposition test.
  double corr_threshold = 0.3;
  int histogram_bins = 64;
  double confidence = 0.95;
  uint64_t seed = 91;
};

/// A learned synopsis with fixed resolution: accuracy does not improve as
/// the table grows (the behaviour Table 2 shows for DeepDB), and supporting
/// new data requires full retraining (the re-optimization cost of Fig. 5/9).
class Spn {
 public:
  /// `columns` are the table columns the model covers (predicate and
  /// aggregate attributes of the query templates of interest).
  Spn(const SpnOptions& opts, std::vector<int> columns);
  ~Spn();

  Spn(const Spn&) = delete;
  Spn& operator=(const Spn&) = delete;

  /// Train from scratch on `rows` (typically a 10% sample); `population` is
  /// |D|, used to scale COUNT/SUM estimates.
  void Train(const std::vector<Tuple>& rows, size_t population);

  /// Update the population scale without retraining (insertions only change
  /// N; the density model stays frozen — DeepDB's warm-start behaviour).
  void set_population(size_t n) { population_ = static_cast<double>(n); }
  double population() const { return population_; }

  /// Estimate a query. MIN/MAX fall back to the training-data extrema.
  QueryResult Query(const AggQuery& q) const;

  double train_seconds() const { return train_seconds_; }
  size_t num_nodes() const;
  /// Heap footprint of the trained model (nodes + histograms).
  size_t MemoryBytes() const;

  /// Snapshot persistence: the trained network (sum/product/leaf nodes with
  /// weights and histograms), covered columns, population scale, training
  /// extrema and the structure-learning RNG state — a restored model answers
  /// bit-identically without retraining.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

 private:
  struct Node;
  struct EvalResult {
    double p = 1.0;    ///< P(predicate)
    double ea = 0.0;   ///< E[A * 1(predicate)]
    bool has_agg = false;
  };

  std::unique_ptr<Node> Build(std::vector<uint32_t> rows,
                              std::vector<int> cols, int depth);
  EvalResult Eval(const Node& node, const AggQuery& q, int agg_column) const;
  static void SaveNode(const Node& n, persist::Writer* w);
  static std::unique_ptr<Node> LoadNode(persist::Reader* r, int depth);

  SpnOptions opts_;
  std::vector<int> columns_;
  std::unique_ptr<Node> root_;
  const std::vector<Tuple>* training_rows_ = nullptr;  // only during Build
  double population_ = 0;
  double train_seconds_ = 0;
  /// Training-data extrema per column (MIN/MAX fallback answers).
  std::array<double, kMaxColumns> col_min_{};
  std::array<double, kMaxColumns> col_max_{};
  uint64_t rng_state_ = 0;
};

}  // namespace janus

#endif  // JANUS_BASELINES_SPN_H_
