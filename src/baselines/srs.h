#ifndef JANUS_BASELINES_SRS_H_
#define JANUS_BASELINES_SRS_H_

#include <memory>
#include <vector>

#include "core/dpt.h"
#include "data/table.h"
#include "sampling/reservoir.h"

namespace janus {

/// Options for the stratified reservoir sampling baseline (Sec. 6.1.3:
/// "the strata is constructed using an equal-depth partitioning algorithm").
struct SrsOptions {
  /// Archive schema (empty falls back to kMaxColumns-wide storage).
  Schema schema;
  int num_strata = 128;
  int predicate_column = 0;
  double sample_rate = 0.01;
  double confidence = 0.95;
  uint64_t seed = 23;
  /// Morsel-parallel execution of the strata-membership archive scans
  /// (initial construction and drained-stratum refills). Default: serial.
  scan::ExecContext exec;
};

/// Stratified Reservoir Sampling (SRS): fixed equal-depth strata over the
/// predicate attribute, one per-stratum reservoir with proportional
/// allocation, exact per-stratum population counters. The strata never move
/// — unlike JanusAQP there is no re-optimization.
class StratifiedReservoirBaseline {
 public:
  explicit StratifiedReservoirBaseline(const SrsOptions& opts);

  void LoadInitial(const std::vector<Tuple>& rows);
  void Initialize();

  void Insert(const Tuple& t);
  bool Delete(uint64_t id);

  QueryResult Query(const AggQuery& q) const;

  const DynamicTable& table() const { return table_; }
  /// Total sample tuples held across all strata reservoirs.
  size_t sample_size() const;
  /// Exact population of a stratum (maintained counter).
  double StratumPopulation(int s) const {
    return populations_[static_cast<size_t>(s)];
  }
  int num_strata() const { return static_cast<int>(boundaries_.size()) + 1; }

  /// Snapshot persistence: archive, stratum boundaries, per-stratum
  /// reservoirs and populations, rebuild trigger state and the system RNG.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: the archive store; ascending stratum boundaries with
  /// parallel reservoir/population arrays; per-stratum reservoir invariants;
  /// every sampled tuple live, keyed into its own stratum; and the exact
  /// population counters summing to the live row count. Throws
  /// InvariantViolation on inconsistency.
  void CheckInvariants() const;

 private:
  int StratumOf(const Tuple& t) const;
  int StratumOfKey(double key) const;
  /// Row positions of every stratum, in position order — one pass over the
  /// key column, morsel-parallel under opts.exec (per-morsel partial lists
  /// concatenate in morsel/chunk order, so the result is bit-identical to
  /// the serial pass even under work stealing).
  /// With `only_stratum` >= 0 just that stratum's list is collected (the
  /// drained-stratum refill path); the others stay empty.
  std::vector<std::vector<size_t>> MembersByStratum(size_t num_strata,
                                                    int only_stratum) const;

  SrsOptions opts_;
  DynamicTable table_;
  size_t rows_at_init_ = 0;
  std::vector<double> boundaries_;  // ascending; stratum i: [b_{i-1}, b_i)
  std::vector<std::unique_ptr<DynamicReservoir>> strata_;
  std::vector<double> populations_;
  Rng rng_;
};

}  // namespace janus

#endif  // JANUS_BASELINES_SRS_H_
