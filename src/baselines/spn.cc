#include "baselines/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "persist/serde.h"
#include "util/timer.h"

namespace janus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t SplitMix(uint64_t* s) {
  uint64_t z = (*s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

struct Spn::Node {
  enum class Kind { kSum, kProduct, kLeaf };
  Kind kind = Kind::kLeaf;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<double> weights;  // sum nodes
  // Leaf: equi-width histogram of one column.
  int column = -1;
  double lo = 0;
  double hi = 0;
  std::vector<double> masses;  // per bin, sums to 1
  std::vector<double> means;   // per-bin mean of the column value
  // Columns covered by this subtree (needed to route E[A * 1] evaluation).
  std::vector<int> cols;

  size_t CountNodes() const {
    size_t n = 1;
    for (const auto& c : children) n += c->CountNodes();
    return n;
  }

  size_t Bytes() const {
    size_t b = sizeof(Node) + children.capacity() * sizeof(children[0]) +
               (weights.capacity() + masses.capacity() + means.capacity()) *
                   sizeof(double) +
               cols.capacity() * sizeof(int);
    for (const auto& c : children) b += c->Bytes();
    return b;
  }
};

Spn::Spn(const SpnOptions& opts, std::vector<int> columns)
    : opts_(opts), columns_(std::move(columns)), rng_state_(opts.seed) {}

Spn::~Spn() = default;

size_t Spn::num_nodes() const { return root_ ? root_->CountNodes() : 0; }

size_t Spn::MemoryBytes() const { return root_ ? root_->Bytes() : 0; }

std::unique_ptr<Spn::Node> Spn::Build(std::vector<uint32_t> rows,
                                      std::vector<int> cols, int depth) {
  const auto& data = *training_rows_;
  auto make_leaf = [&](int col) {
    auto leaf = std::make_unique<Node>();
    leaf->kind = Node::Kind::kLeaf;
    leaf->column = col;
    leaf->cols = {col};
    double lo = kInf, hi = -kInf;
    for (uint32_t r : rows) {
      lo = std::min(lo, data[r][col]);
      hi = std::max(hi, data[r][col]);
    }
    if (!(lo <= hi)) {
      lo = 0;
      hi = 0;
    }
    leaf->lo = lo;
    leaf->hi = hi;
    const int bins = std::max(1, opts_.histogram_bins);
    leaf->masses.assign(static_cast<size_t>(bins), 0);
    std::vector<double> sums(static_cast<size_t>(bins), 0);
    const double width = hi > lo ? (hi - lo) / bins : 1.0;
    for (uint32_t r : rows) {
      const double v = data[r][col];
      int b = hi > lo ? static_cast<int>((v - lo) / width) : 0;
      b = std::clamp(b, 0, bins - 1);
      leaf->masses[static_cast<size_t>(b)] += 1;
      sums[static_cast<size_t>(b)] += v;
    }
    leaf->means.resize(static_cast<size_t>(bins));
    const double n = static_cast<double>(rows.size());
    for (int b = 0; b < bins; ++b) {
      const double mass = leaf->masses[static_cast<size_t>(b)];
      leaf->means[static_cast<size_t>(b)] =
          mass > 0 ? sums[static_cast<size_t>(b)] / mass
                   : lo + (b + 0.5) * width;
      leaf->masses[static_cast<size_t>(b)] = n > 0 ? mass / n : 0;
    }
    return leaf;
  };

  auto make_leaf_product = [&]() {
    if (cols.size() == 1) return make_leaf(cols[0]);
    auto prod = std::make_unique<Node>();
    prod->kind = Node::Kind::kProduct;
    prod->cols = cols;
    for (int c : cols) prod->children.push_back(make_leaf(c));
    return prod;
  };

  if (cols.size() == 1) return make_leaf(cols[0]);
  if (rows.size() < opts_.min_instances || depth >= opts_.max_depth) {
    return make_leaf_product();
  }

  // --- column decomposition: split independent column groups -------------
  // Dependency is measured with the Randomized Dependence Coefficient, the
  // test DeepDB's structure learning uses: copula (rank) transform each
  // column, lift through random sinusoidal features, and take the largest
  // feature-pair correlation. Far more sensitive to non-linear dependence
  // than Pearson — and, like in DeepDB, the dominant training cost.
  {
    const size_t probe = std::min<size_t>(rows.size(), 4096);
    const size_t d = cols.size();
    constexpr int kRdcFeatures = 8;
    // Copula transform: rank of each probed value within its column.
    std::vector<std::vector<double>> ranks(d,
                                           std::vector<double>(probe));
    std::vector<uint32_t> order(probe);
    for (size_t c = 0; c < d; ++c) {
      for (size_t i = 0; i < probe; ++i) order[i] = static_cast<uint32_t>(i);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return data[rows[a]][cols[c]] < data[rows[b]][cols[c]];
      });
      for (size_t r = 0; r < probe; ++r) {
        ranks[c][order[r]] =
            static_cast<double>(r) / static_cast<double>(probe);
      }
    }
    // Random sinusoidal features per column.
    std::vector<std::vector<std::vector<double>>> feats(
        d, std::vector<std::vector<double>>(
               kRdcFeatures, std::vector<double>(probe)));
    for (size_t c = 0; c < d; ++c) {
      for (int f = 0; f < kRdcFeatures; ++f) {
        const double w =
            (static_cast<double>(SplitMix(&rng_state_) >> 11) * 0x1.0p-53 -
             0.5) *
            12.0;
        const double b =
            static_cast<double>(SplitMix(&rng_state_) >> 11) * 0x1.0p-53 *
            6.28318530717958647692;
        double mean = 0;
        for (size_t i = 0; i < probe; ++i) {
          feats[c][f][i] = std::sin(w * ranks[c][i] + b);
          mean += feats[c][f][i];
        }
        mean /= static_cast<double>(probe);
        double var = 0;
        for (size_t i = 0; i < probe; ++i) {
          feats[c][f][i] -= mean;
          var += feats[c][f][i] * feats[c][f][i];
        }
        const double sd = std::sqrt(var);
        if (sd > 0) {
          for (size_t i = 0; i < probe; ++i) feats[c][f][i] /= sd;
        }
      }
    }
    auto rdc = [&](size_t a, size_t b) {
      double best = 0;
      for (int fa = 0; fa < kRdcFeatures; ++fa) {
        for (int fb = 0; fb < kRdcFeatures; ++fb) {
          double dot = 0;
          for (size_t i = 0; i < probe; ++i) {
            dot += feats[a][fa][i] * feats[b][fb][i];
          }
          best = std::max(best, std::abs(dot));
        }
      }
      return best;
    };
    // Union-find over dependent columns.
    std::vector<size_t> parent(d);
    for (size_t i = 0; i < d; ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a + 1; b < d; ++b) {
        if (rdc(a, b) >= opts_.corr_threshold) parent[find(a)] = find(b);
      }
    }
    std::vector<std::vector<int>> groups;
    std::vector<int> group_of(d, -1);
    for (size_t c = 0; c < d; ++c) {
      const size_t root = find(c);
      if (group_of[root] < 0) {
        group_of[root] = static_cast<int>(groups.size());
        groups.emplace_back();
      }
      groups[static_cast<size_t>(group_of[root])].push_back(cols[c]);
    }
    if (groups.size() > 1) {
      auto prod = std::make_unique<Node>();
      prod->kind = Node::Kind::kProduct;
      prod->cols = cols;
      for (auto& g : groups) {
        prod->children.push_back(Build(rows, std::move(g), depth + 1));
      }
      return prod;
    }
  }

  // --- row clustering: 2-means over normalized columns -------------------
  {
    const size_t d = cols.size();
    std::vector<double> mean(d, 0), sd(d, 0);
    for (uint32_t r : rows) {
      for (size_t c = 0; c < d; ++c) mean[c] += data[r][cols[c]];
    }
    for (auto& v : mean) v /= static_cast<double>(rows.size());
    for (uint32_t r : rows) {
      for (size_t c = 0; c < d; ++c) {
        const double dv = data[r][cols[c]] - mean[c];
        sd[c] += dv * dv;
      }
    }
    for (auto& v : sd) {
      v = std::sqrt(v / static_cast<double>(rows.size()));
      if (v <= 0) v = 1;
    }
    auto norm = [&](uint32_t r, size_t c) {
      return (data[r][cols[c]] - mean[c]) / sd[c];
    };
    // Initialize centroids from two random rows.
    std::vector<double> c0(d), c1(d);
    const uint32_t r0 = rows[SplitMix(&rng_state_) % rows.size()];
    uint32_t r1 = rows[SplitMix(&rng_state_) % rows.size()];
    for (size_t c = 0; c < d; ++c) c0[c] = norm(r0, c);
    for (size_t c = 0; c < d; ++c) c1[c] = norm(r1, c);
    std::vector<uint8_t> assign(rows.size(), 0);
    for (int iter = 0; iter < opts_.kmeans_iters; ++iter) {
      // Assignment.
      for (size_t i = 0; i < rows.size(); ++i) {
        double d0 = 0, d1 = 0;
        for (size_t c = 0; c < d; ++c) {
          const double v = norm(rows[i], c);
          d0 += (v - c0[c]) * (v - c0[c]);
          d1 += (v - c1[c]) * (v - c1[c]);
        }
        assign[i] = d1 < d0 ? 1 : 0;
      }
      // Update.
      std::vector<double> n0v(d, 0), n1v(d, 0);
      size_t n0 = 0, n1 = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t c = 0; c < d; ++c) {
          (assign[i] ? n1v : n0v)[c] += norm(rows[i], c);
        }
        (assign[i] ? n1 : n0) += 1;
      }
      if (n0 == 0 || n1 == 0) break;
      for (size_t c = 0; c < d; ++c) {
        c0[c] = n0v[c] / static_cast<double>(n0);
        c1[c] = n1v[c] / static_cast<double>(n1);
      }
    }
    std::vector<uint32_t> left, right;
    for (size_t i = 0; i < rows.size(); ++i) {
      (assign[i] ? right : left).push_back(rows[i]);
    }
    if (left.empty() || right.empty()) return make_leaf_product();
    auto sum = std::make_unique<Node>();
    sum->kind = Node::Kind::kSum;
    sum->cols = cols;
    const double total = static_cast<double>(rows.size());
    sum->weights = {static_cast<double>(left.size()) / total,
                    static_cast<double>(right.size()) / total};
    sum->children.push_back(Build(std::move(left), cols, depth + 1));
    sum->children.push_back(Build(std::move(right), cols, depth + 1));
    return sum;
  }
}

void Spn::Train(const std::vector<Tuple>& rows, size_t population) {
  Timer timer;
  population_ = static_cast<double>(population);
  training_rows_ = &rows;
  for (int c : columns_) {
    double lo = kInf, hi = -kInf;
    for (const Tuple& t : rows) {
      lo = std::min(lo, t[c]);
      hi = std::max(hi, t[c]);
    }
    col_min_[static_cast<size_t>(c)] = lo;
    col_max_[static_cast<size_t>(c)] = hi;
  }
  std::vector<uint32_t> idx(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) idx[i] = static_cast<uint32_t>(i);
  root_ = rows.empty() ? nullptr : Build(std::move(idx), columns_, 0);
  training_rows_ = nullptr;
  train_seconds_ = timer.ElapsedSeconds();
}

Spn::EvalResult Spn::Eval(const Node& node, const AggQuery& q,
                          int agg_column) const {
  // Per-column predicate bounds.
  auto bounds_for = [&](int col) -> std::pair<double, double> {
    for (size_t i = 0; i < q.predicate_columns.size(); ++i) {
      if (q.predicate_columns[i] == col) {
        return {q.rect.lo(static_cast<int>(i)),
                q.rect.hi(static_cast<int>(i))};
      }
    }
    return {-kInf, kInf};
  };

  switch (node.kind) {
    case Node::Kind::kLeaf: {
      const auto [qlo, qhi] = bounds_for(node.column);
      EvalResult r;
      r.has_agg = node.column == agg_column;
      const int bins = static_cast<int>(node.masses.size());
      if (node.hi <= node.lo) {
        // Degenerate histogram: a point mass at node.lo.
        const bool in = node.lo >= qlo && node.lo <= qhi;
        r.p = in ? 1.0 : 0.0;
        r.ea = r.has_agg && in ? node.lo : 0.0;
        return r;
      }
      const double width = (node.hi - node.lo) / bins;
      double p = 0, ea = 0;
      for (int b = 0; b < bins; ++b) {
        const double blo = node.lo + b * width;
        const double bhi = blo + width;
        const double olo = std::max(blo, qlo);
        const double ohi = std::min(bhi, qhi);
        if (ohi <= olo) continue;
        const double frac = (ohi - olo) / width;
        const double mass = node.masses[static_cast<size_t>(b)] * frac;
        p += mass;
        if (r.has_agg) ea += mass * node.means[static_cast<size_t>(b)];
      }
      r.p = p;
      r.ea = ea;
      return r;
    }
    case Node::Kind::kProduct: {
      EvalResult r;
      r.p = 1;
      r.ea = 1;
      bool agg_seen = false;
      double agg_ea = 0;
      double other_p = 1;
      for (const auto& child : node.children) {
        const EvalResult cr = Eval(*child, q, agg_column);
        r.p *= cr.p;
        if (cr.has_agg) {
          agg_seen = true;
          agg_ea = cr.ea;
        } else {
          other_p *= cr.p;
        }
      }
      r.has_agg = agg_seen;
      r.ea = agg_seen ? agg_ea * other_p : 0;
      return r;
    }
    case Node::Kind::kSum: {
      EvalResult r;
      r.p = 0;
      r.ea = 0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        const EvalResult cr = Eval(*node.children[i], q, agg_column);
        r.p += node.weights[i] * cr.p;
        r.ea += node.weights[i] * cr.ea;
        r.has_agg = r.has_agg || cr.has_agg;
      }
      return r;
    }
  }
  return {};
}

QueryResult Spn::Query(const AggQuery& q) const {
  QueryResult r;
  if (!root_) return r;
  if (q.func == AggFunc::kMin || q.func == AggFunc::kMax) {
    // Fixed-resolution models cannot answer extrema under predicates; return
    // the training extrema of the aggregate column.
    r.estimate = q.func == AggFunc::kMin
                     ? col_min_[static_cast<size_t>(q.agg_column)]
                     : col_max_[static_cast<size_t>(q.agg_column)];
    return r;
  }
  const EvalResult er = Eval(*root_, q, q.agg_column);
  switch (q.func) {
    case AggFunc::kCount:
      r.estimate = population_ * er.p;
      break;
    case AggFunc::kSum:
      r.estimate = population_ * er.ea;
      break;
    case AggFunc::kAvg:
      r.estimate = er.p > 0 ? er.ea / er.p : 0;
      break;
    default:
      break;
  }
  return r;
}

void Spn::SaveNode(const Node& n, persist::Writer* w) {
  w->U8(static_cast<uint8_t>(n.kind));
  w->F64Vec(n.weights);
  w->I32(n.column);
  w->F64(n.lo);
  w->F64(n.hi);
  w->F64Vec(n.masses);
  w->F64Vec(n.means);
  w->IntVec(n.cols);
  w->Size(n.children.size());
  for (const auto& c : n.children) SaveNode(*c, w);
}

std::unique_ptr<Spn::Node> Spn::LoadNode(persist::Reader* r, int depth) {
  // Depth bound against forged payloads: training caps structure depth at
  // max_depth (default 12) plus a product/leaf layer, far below 256.
  if (depth > 256) {
    throw persist::PersistError("snapshot corrupt: SPN too deep");
  }
  auto n = std::make_unique<Node>();
  const uint8_t kind = r->U8();
  if (kind > static_cast<uint8_t>(Node::Kind::kLeaf)) {
    throw persist::PersistError("snapshot corrupt: bad SPN node kind");
  }
  n->kind = static_cast<Node::Kind>(kind);
  n->weights = r->F64Vec();
  n->column = r->I32();
  n->lo = r->F64();
  n->hi = r->F64();
  n->masses = r->F64Vec();
  n->means = r->F64Vec();
  n->cols = r->IntVec();
  const size_t num_children = r->Size();
  n->children.reserve(num_children);
  for (size_t i = 0; i < num_children; ++i) {
    n->children.push_back(LoadNode(r, depth + 1));
  }
  return n;
}

void Spn::SaveTo(persist::Writer* w) const {
  w->IntVec(columns_);
  w->F64(population_);
  w->F64(train_seconds_);
  for (int c = 0; c < kMaxColumns; ++c) {
    w->F64(col_min_[static_cast<size_t>(c)]);
    w->F64(col_max_[static_cast<size_t>(c)]);
  }
  w->U64(rng_state_);
  w->Bool(root_ != nullptr);
  if (root_) SaveNode(*root_, w);
}

void Spn::LoadFrom(persist::Reader* r) {
  columns_ = r->IntVec();
  population_ = r->F64();
  train_seconds_ = r->F64();
  for (int c = 0; c < kMaxColumns; ++c) {
    col_min_[static_cast<size_t>(c)] = r->F64();
    col_max_[static_cast<size_t>(c)] = r->F64();
  }
  rng_state_ = r->U64();
  root_ = r->Bool() ? LoadNode(r, 0) : nullptr;
}

}  // namespace janus
