#include "baselines/rs.h"

#include <string>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/variance.h"
#include "persist/serde.h"
#include "util/invariants.h"
#include "util/stats.h"

namespace janus {

ReservoirBaseline::ReservoirBaseline(const RsOptions& opts)
    : opts_(opts), table_(opts.schema), rng_(opts.seed) {}

void ReservoirBaseline::LoadInitial(const std::vector<Tuple>& rows) {
  for (const Tuple& t : rows) table_.Insert(t);
}

void ReservoirBaseline::Initialize() {
  const size_t target = std::max<size_t>(
      32, static_cast<size_t>(2.0 * opts_.sample_rate *
                              static_cast<double>(table_.size())));
  reservoir_ = std::make_unique<DynamicReservoir>(target, rng_.Next());
  reservoir_->Reset(table_.SampleUniform(&rng_, target, opts_.exec));
}

void ReservoirBaseline::Insert(const Tuple& t) {
  table_.Insert(t);
  // The baseline keeps a fixed *rate*, not a fixed size (Table 2: RS error
  // falls and latency grows as the table grows): when the table doubles,
  // re-size the reservoir from the archive.
  const size_t desired = static_cast<size_t>(
      2.0 * opts_.sample_rate * static_cast<double>(table_.size()));
  if (desired >= 2 * reservoir_->capacity()) {
    Initialize();
    return;
  }
  reservoir_->OnInsert(t, table_.size());
}

bool ReservoirBaseline::Delete(uint64_t id) {
  if (!table_.Delete(id)) return false;
  ReservoirChange ch = reservoir_->OnDelete(id);
  if (ch.needs_resample) {
    reservoir_->Reset(
        table_.SampleUniform(&rng_, reservoir_->capacity(), opts_.exec));
  }
  return true;
}

QueryResult ReservoirBaseline::Query(const AggQuery& q) const {
  QueryResult r;
  const auto& samples = reservoir_->samples();
  const double m = static_cast<double>(samples.size());
  const double n = static_cast<double>(table_.size());
  if (m == 0) return r;
  TreeAgg match;
  double best_min = std::numeric_limits<double>::max();
  double best_max = std::numeric_limits<double>::lowest();
  std::vector<double> point(q.predicate_columns.size());
  for (const Tuple& t : samples) {
    ProjectTuple(t, q.predicate_columns, point.data());
    if (!q.rect.Contains(point.data())) continue;
    const double v = t[q.agg_column];
    match.count += 1;
    match.sum += v;
    match.sumsq += v * v;
    best_min = std::min(best_min, v);
    best_max = std::max(best_max, v);
  }
  switch (q.func) {
    case AggFunc::kSum:
      r.estimate = n / m * match.sum;
      r.variance_sample = SumQueryVariance(n, m, match);
      break;
    case AggFunc::kCount:
      r.estimate = n / m * match.count;
      r.variance_sample = CountQueryVariance(n, m, match.count);
      break;
    case AggFunc::kAvg:
      r.estimate = match.count > 0 ? match.sum / match.count : 0;
      r.variance_sample = AvgQueryVariance(1.0, m, match);
      break;
    case AggFunc::kMin:
      r.estimate = match.count > 0 ? best_min : 0;
      break;
    case AggFunc::kMax:
      r.estimate = match.count > 0 ? best_max : 0;
      break;
  }
  r.ci_half_width = NormalZ(opts_.confidence) * std::sqrt(r.variance_sample);
  return r;
}

void ReservoirBaseline::SaveTo(persist::Writer* w) const {
  table_.SaveTo(w);
  rng_.SaveTo(w);
  w->Bool(reservoir_ != nullptr);
  if (reservoir_) reservoir_->SaveTo(w);
}

void ReservoirBaseline::LoadFrom(persist::Reader* r) {
  table_.LoadFrom(r);
  rng_.LoadFrom(r);
  if (r->Bool()) {
    reservoir_ = std::make_unique<DynamicReservoir>(2, 0);
    reservoir_->LoadFrom(r);
  } else {
    reservoir_.reset();
  }
}

void ReservoirBaseline::CheckInvariants() const {
  table_.store().CheckInvariants();
  if (!reservoir_) return;
  reservoir_->CheckInvariants();
  for (const Tuple& t : reservoir_->samples()) {
    invariants::Require(table_.Find(t.id).has_value(), "ReservoirBaseline",
                        "reservoir holds id " + std::to_string(t.id) +
                            " that is not live in the archive");
  }
}

}  // namespace janus
