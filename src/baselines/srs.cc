#include "baselines/srs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/variance.h"
#include "data/parallel_scan.h"
#include "persist/serde.h"
#include "util/invariants.h"
#include "util/stats.h"

namespace janus {

StratifiedReservoirBaseline::StratifiedReservoirBaseline(
    const SrsOptions& opts)
    : opts_(opts), table_(opts.schema), rng_(opts.seed) {}

void StratifiedReservoirBaseline::LoadInitial(const std::vector<Tuple>& rows) {
  for (const Tuple& t : rows) table_.Insert(t);
}

size_t StratifiedReservoirBaseline::sample_size() const {
  size_t total = 0;
  for (const auto& stratum : strata_) {
    if (stratum) total += stratum->size();
  }
  return total;
}

int StratifiedReservoirBaseline::StratumOfKey(double key) const {
  // First boundary strictly greater than key.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key);
  return static_cast<int>(it - boundaries_.begin());
}

int StratifiedReservoirBaseline::StratumOf(const Tuple& t) const {
  return StratumOfKey(t[opts_.predicate_column]);
}

std::vector<std::vector<size_t>> StratifiedReservoirBaseline::MembersByStratum(
    size_t num_strata, int only_stratum) const {
  const ColumnStore& store = table_.store();
  const ColumnSpan key_col = table_.column(opts_.predicate_column);
  const size_t n = store.size();
  const scan::MorselPlan plan = scan::PlanMorsels(opts_.exec, n);
  // Partials live per *chunk* and concatenate in chunk order: membership
  // lists stay position-ascending — identical to a serial pass — no matter
  // which worker stole which morsel. That order feeds rng_.SampleIndices,
  // so any other merge order would silently change which rows get sampled.
  std::vector<std::vector<std::vector<size_t>>> parts(
      std::max<size_t>(plan.morsels, 1));
  scan::ForEachMorsel(opts_.exec, n, plan,
                      [&](size_t, size_t chunk, size_t begin, size_t end) {
                        auto& mine = parts[chunk];
                        mine.assign(num_strata, {});
                        for (size_t pos = begin; pos < end; ++pos) {
                          const double key =
                              key_col.data != nullptr ? key_col[pos] : 0.0;
                          const int s = StratumOfKey(key);
                          if (only_stratum >= 0 && s != only_stratum) {
                            continue;
                          }
                          mine[static_cast<size_t>(s)].push_back(pos);
                        }
                      });
  std::vector<std::vector<size_t>> members(num_strata);
  if (n == 0) return members;
  members = std::move(parts[0]);
  for (size_t c = 1; c < parts.size(); ++c) {
    if (parts[c].empty()) continue;  // chunk skipped by a serial clamp
    for (size_t s = 0; s < num_strata; ++s) {
      members[s].insert(members[s].end(), parts[c][s].begin(),
                        parts[c][s].end());
    }
  }
  return members;
}

void StratifiedReservoirBaseline::Initialize() {
  rows_at_init_ = table_.size();
  // Equal-depth boundaries from a sort of the predicate column — copied
  // straight out of its contiguous array.
  const ColumnSpan key_col = table_.column(opts_.predicate_column);
  std::vector<double> keys(key_col.begin(), key_col.end());
  if (key_col.data == nullptr) {
    // Key column outside the schema reads 0.0 everywhere.
    keys.assign(table_.size(), 0.0);
  }
  std::sort(keys.begin(), keys.end());
  boundaries_.clear();
  const size_t n = keys.size();
  const size_t k = static_cast<size_t>(std::max(1, opts_.num_strata));
  for (size_t s = 1; s < k; ++s) {
    const size_t r = s * n / k;
    if (r == 0 || r >= n) continue;
    const double key = keys[r];
    if (boundaries_.empty() || key > boundaries_.back()) {
      boundaries_.push_back(key);
    }
  }
  const size_t strata = boundaries_.size() + 1;
  const size_t per_stratum_target = std::max<size_t>(
      8, static_cast<size_t>(2.0 * opts_.sample_rate *
                             static_cast<double>(n) /
                             static_cast<double>(strata)));
  strata_.clear();
  populations_.assign(strata, 0);
  // Stratum membership from one (morsel-parallel) pass over the key column;
  // only the rows a reservoir actually draws are materialized.
  const ColumnStore& store = table_.store();
  const std::vector<std::vector<size_t>> members =
      MembersByStratum(strata, /*only_stratum=*/-1);
  for (size_t s = 0; s < strata; ++s) {
    populations_[s] = static_cast<double>(members[s].size());
  }
  for (size_t s = 0; s < strata; ++s) {
    strata_.push_back(
        std::make_unique<DynamicReservoir>(per_stratum_target, rng_.Next()));
    std::vector<size_t> idx =
        rng_.SampleIndices(members[s].size(), per_stratum_target);
    std::vector<Tuple> sample;
    sample.reserve(idx.size());
    for (size_t i : idx) sample.push_back(store.RowTuple(members[s][i]));
    strata_[s]->Reset(std::move(sample));
  }
}

void StratifiedReservoirBaseline::Insert(const Tuple& t) {
  table_.Insert(t);
  // Maintain the sampling *rate* as the table grows: when the table has
  // doubled, rebuild the (equal-depth) strata and their reservoirs from the
  // archive — the tuning the paper applies so baselines "roughly control
  // for query latency" (Sec. 6.1.3).
  if (table_.size() >= 2 * rows_at_init_ && rows_at_init_ > 0) {
    Initialize();
    return;
  }
  const int s = StratumOf(t);
  populations_[static_cast<size_t>(s)] += 1;
  strata_[static_cast<size_t>(s)]->OnInsert(
      t, static_cast<size_t>(populations_[static_cast<size_t>(s)]));
}

bool StratifiedReservoirBaseline::Delete(uint64_t id) {
  const std::optional<Tuple> p = table_.Find(id);
  if (!p.has_value()) return false;
  const Tuple t = *p;
  table_.Delete(id);
  const int s = StratumOf(t);
  populations_[static_cast<size_t>(s)] -= 1;
  ReservoirChange ch = strata_[static_cast<size_t>(s)]->OnDelete(id);
  if (ch.needs_resample) {
    // Re-fill this stratum from the archive: membership comes from a dense
    // (morsel-parallel) scan of the key column, only sampled rows are
    // materialized.
    const ColumnStore& store = table_.store();
    std::vector<std::vector<size_t>> by_stratum =
        MembersByStratum(strata_.size(), s);
    const std::vector<size_t> members =
        std::move(by_stratum[static_cast<size_t>(s)]);
    std::vector<size_t> idx = rng_.SampleIndices(
        members.size(), strata_[static_cast<size_t>(s)]->capacity());
    std::vector<Tuple> sample;
    sample.reserve(idx.size());
    for (size_t i : idx) sample.push_back(store.RowTuple(members[i]));
    strata_[static_cast<size_t>(s)]->Reset(std::move(sample));
  }
  return true;
}

QueryResult StratifiedReservoirBaseline::Query(const AggQuery& q) const {
  QueryResult r;
  double nu = 0;
  double est_sum = 0;
  double est_count = 0;
  double best_min = std::numeric_limits<double>::max();
  double best_max = std::numeric_limits<double>::lowest();
  bool any = false;
  std::vector<double> point(q.predicate_columns.size());
  // AVG needs matching-population weights: collect per-stratum first.
  struct Part {
    double ni;
    double mi;
    TreeAgg match;
  };
  std::vector<Part> parts;
  for (size_t s = 0; s < strata_.size(); ++s) {
    const auto& samples = strata_[s]->samples();
    if (samples.empty()) continue;
    TreeAgg match;
    for (const Tuple& t : samples) {
      ProjectTuple(t, q.predicate_columns, point.data());
      if (!q.rect.Contains(point.data())) continue;
      const double v = t[q.agg_column];
      match.count += 1;
      match.sum += v;
      match.sumsq += v * v;
      best_min = std::min(best_min, v);
      best_max = std::max(best_max, v);
      any = true;
    }
    if (match.count == 0) continue;
    parts.push_back(
        {populations_[s], static_cast<double>(samples.size()), match});
  }
  switch (q.func) {
    case AggFunc::kSum: {
      for (const Part& p : parts) {
        est_sum += p.ni / p.mi * p.match.sum;
        nu += SumQueryVariance(p.ni, p.mi, p.match);
      }
      r.estimate = est_sum;
      break;
    }
    case AggFunc::kCount: {
      for (const Part& p : parts) {
        est_count += p.ni / p.mi * p.match.count;
        nu += CountQueryVariance(p.ni, p.mi, p.match.count);
      }
      r.estimate = est_count;
      break;
    }
    case AggFunc::kAvg: {
      double nq = 0;
      for (const Part& p : parts) nq += p.ni * p.match.count / p.mi;
      if (nq > 0) {
        double est = 0;
        for (const Part& p : parts) {
          const double wi = (p.ni * p.match.count / p.mi) / nq;
          est += wi * (p.match.sum / p.match.count);
          nu += AvgQueryVariance(wi, p.mi, p.match);
        }
        r.estimate = est;
      }
      break;
    }
    case AggFunc::kMin:
      r.estimate = any ? best_min : 0;
      break;
    case AggFunc::kMax:
      r.estimate = any ? best_max : 0;
      break;
  }
  r.variance_sample = nu;
  r.ci_half_width = NormalZ(opts_.confidence) * std::sqrt(nu);
  return r;
}

void StratifiedReservoirBaseline::SaveTo(persist::Writer* w) const {
  table_.SaveTo(w);
  rng_.SaveTo(w);
  w->Size(rows_at_init_);
  w->F64Vec(boundaries_);
  w->F64Vec(populations_);
  w->Size(strata_.size());
  for (const auto& stratum : strata_) {
    w->Bool(stratum != nullptr);
    if (stratum) stratum->SaveTo(w);
  }
}

void StratifiedReservoirBaseline::LoadFrom(persist::Reader* r) {
  table_.LoadFrom(r);
  rng_.LoadFrom(r);
  rows_at_init_ = r->Size();
  boundaries_ = r->F64Vec();
  populations_ = r->F64Vec();
  strata_.clear();
  const size_t num_strata = r->Size();
  if (populations_.size() != num_strata ||
      (num_strata > 0 && num_strata != boundaries_.size() + 1)) {
    throw persist::PersistError(
        "snapshot corrupt: strata/boundaries/populations disagree");
  }
  strata_.reserve(num_strata);
  for (size_t s = 0; s < num_strata; ++s) {
    if (r->Bool()) {
      auto stratum = std::make_unique<DynamicReservoir>(2, 0);
      stratum->LoadFrom(r);
      strata_.push_back(std::move(stratum));
    } else {
      strata_.push_back(nullptr);
    }
  }
}

void StratifiedReservoirBaseline::CheckInvariants() const {
  table_.store().CheckInvariants();
  invariants::Require(std::is_sorted(boundaries_.begin(), boundaries_.end()),
                      "StratifiedReservoirBaseline",
                      "stratum boundaries are not ascending");
  if (strata_.empty()) return;  // not initialized yet
  invariants::Require(
      strata_.size() == boundaries_.size() + 1 &&
          populations_.size() == strata_.size(),
      "StratifiedReservoirBaseline",
      "parallel stratum arrays disagree: " + std::to_string(strata_.size()) +
          " reservoirs, " + std::to_string(boundaries_.size()) +
          " boundaries, " + std::to_string(populations_.size()) +
          " population counters");
  double population_total = 0;
  for (size_t i = 0; i < strata_.size(); ++i) {
    invariants::Require(populations_[i] >= 0, "StratifiedReservoirBaseline",
                        "stratum " + std::to_string(i) +
                            " has negative population counter " +
                            std::to_string(populations_[i]));
    population_total += populations_[i];
    if (strata_[i] == nullptr) continue;
    strata_[i]->CheckInvariants();
    for (const Tuple& t : strata_[i]->samples()) {
      invariants::Require(
          table_.Find(t.id).has_value(), "StratifiedReservoirBaseline",
          "stratum " + std::to_string(i) + " samples id " +
              std::to_string(t.id) + " that is not live in the archive");
      invariants::Require(
          StratumOf(t) == static_cast<int>(i), "StratifiedReservoirBaseline",
          "sample id " + std::to_string(t.id) + " sits in stratum " +
              std::to_string(i) + " but keys into stratum " +
              std::to_string(StratumOf(t)));
    }
  }
  // The counters are maintained exactly (integral adds/subtracts), so the
  // comparison with the live row count is exact too.
  invariants::Require(
      population_total == static_cast<double>(table_.size()),
      "StratifiedReservoirBaseline",
      "per-stratum populations sum to " + std::to_string(population_total) +
          " but the archive holds " + std::to_string(table_.size()) +
          " rows");
}

}  // namespace janus
