#ifndef JANUS_NET_SOCKET_H_
#define JANUS_NET_SOCKET_H_

#include <cstdint>
#include <string>

namespace janus {
namespace net {

/// RAII wrapper over one connected TCP socket (POSIX fd). Movable,
/// non-copyable; the destructor closes the fd. All transport failures
/// throw ApiException(ApiErrorCode::kNetwork) — the serving tier never
/// surfaces raw errno values to callers.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to host:port (numeric IPv4 or "localhost"). Throws
  /// ApiException(kNetwork) on resolution or connection failure.
  static Socket ConnectTcp(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write exactly `n` bytes, retrying on EINTR / short writes. Throws
  /// ApiException(kNetwork) on failure.
  void SendAll(const void* data, size_t n);

  /// Read exactly `n` bytes. Returns false on clean EOF before the first
  /// byte (peer closed at a message boundary); throws ApiException(kNetwork)
  /// on errors or EOF mid-read.
  bool RecvAll(void* data, size_t n);

  /// Shut down both directions (unblocks a peer or a thread blocked in
  /// RecvAll) without closing the fd.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1. `port == 0` binds an
/// ephemeral port (tests); `port()` reports the actual one.
class ListenSocket {
 public:
  /// Bind + listen; throws ApiException(kNetwork) on failure.
  explicit ListenSocket(uint16_t port, int backlog = 64);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  uint16_t port() const { return port_; }

  /// Wait up to `timeout_ms` for a connection. Returns an invalid Socket on
  /// timeout (callers poll so an accept loop can observe its stop flag);
  /// throws ApiException(kNetwork) on accept failure.
  Socket AcceptWithTimeout(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace janus

#endif  // JANUS_NET_SOCKET_H_
