#include "net/wire.h"

#include <cstring>

#include "net/socket.h"

namespace janus {
namespace net {

namespace {

[[noreturn]] void ThrowMalformed(const std::string& what) {
  throw ApiException(ApiErrorCode::kMalformedFrame, what);
}

}  // namespace

// --- frame encode / decode --------------------------------------------------

std::vector<uint8_t> EncodeFrame(uint8_t type, uint64_t tenant_id,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    ThrowMalformed("payload of " + std::to_string(payload.size()) +
                   " bytes exceeds the frame cap of " +
                   std::to_string(kMaxPayloadBytes));
  }
  persist::Writer w;
  w.U32(kWireMagic);
  w.U8(type);
  w.U8(0);  // flags: reserved
  w.Bytes(&kWireVersion, 2);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U64(tenant_id);
  w.U64(request_id);
  w.U64(persist::Fnv1a(payload.data(), payload.size()));
  std::vector<uint8_t> frame = w.buffer();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

FrameHeader DecodeHeader(const uint8_t* data, size_t size) {
  if (size != kFrameHeaderBytes) {
    ThrowMalformed("frame header is " + std::to_string(size) +
                   " bytes, expected " + std::to_string(kFrameHeaderBytes));
  }
  persist::Reader r(data, size);
  FrameHeader h;
  const uint32_t magic = r.U32();
  if (magic != kWireMagic) {
    ThrowMalformed("bad frame magic 0x" + std::to_string(magic) +
                   " (not a serving-tier connection?)");
  }
  h.type = r.U8();
  h.flags = r.U8();
  uint16_t version = 0;
  r.Bytes(&version, 2);
  h.version = version;
  h.payload_len = r.U32();
  h.tenant_id = r.U64();
  h.request_id = r.U64();
  h.checksum = r.U64();
  if (h.version != kWireVersion) {
    ThrowMalformed("unsupported wire version " + std::to_string(h.version) +
                   " (this build speaks version " +
                   std::to_string(kWireVersion) + ")");
  }
  if (h.flags != 0) {
    ThrowMalformed("reserved frame flags must be zero, got " +
                   std::to_string(h.flags));
  }
  if (h.payload_len > kMaxPayloadBytes) {
    // The hostile-length guard: reject before any allocation happens.
    ThrowMalformed("declared payload of " + std::to_string(h.payload_len) +
                   " bytes exceeds the frame cap of " +
                   std::to_string(kMaxPayloadBytes));
  }
  return h;
}

void VerifyPayload(const FrameHeader& h, const std::vector<uint8_t>& payload) {
  if (payload.size() != h.payload_len) {
    ThrowMalformed("frame payload is " + std::to_string(payload.size()) +
                   " bytes but the header declared " +
                   std::to_string(h.payload_len));
  }
  if (persist::Fnv1a(payload.data(), payload.size()) != h.checksum) {
    ThrowMalformed("frame payload checksum mismatch");
  }
}

// --- socket-level framing ---------------------------------------------------

void SendFrame(Socket* sock, uint8_t type, uint64_t tenant_id,
               uint64_t request_id, const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> frame =
      EncodeFrame(type, tenant_id, request_id, payload);
  sock->SendAll(frame.data(), frame.size());
}

bool RecvFrame(Socket* sock, FrameHeader* header,
               std::vector<uint8_t>* payload) {
  uint8_t raw[kFrameHeaderBytes];
  if (!sock->RecvAll(raw, sizeof(raw))) return false;  // clean EOF
  *header = DecodeHeader(raw, sizeof(raw));
  payload->resize(header->payload_len);
  if (header->payload_len > 0 &&
      !sock->RecvAll(payload->data(), payload->size())) {
    ThrowMalformed("connection closed mid-frame: expected " +
                   std::to_string(header->payload_len) + " payload bytes");
  }
  VerifyPayload(*header, *payload);
  return true;
}

// --- payload serializers ----------------------------------------------------

void WriteAggQuery(const AggQuery& q, persist::Writer* w) {
  w->U8(static_cast<uint8_t>(q.func));
  w->I32(q.agg_column);
  w->IntVec(q.predicate_columns);
  w->I32(q.rect.dims());
  for (int d = 0; d < q.rect.dims(); ++d) {
    w->F64(q.rect.lo(d));
    w->F64(q.rect.hi(d));
  }
}

AggQuery ReadAggQuery(persist::Reader* r) {
  AggQuery q;
  const uint8_t func = r->U8();
  if (func > static_cast<uint8_t>(AggFunc::kMax)) {
    ThrowMalformed("unknown aggregate function code " + std::to_string(func));
  }
  q.func = static_cast<AggFunc>(func);
  q.agg_column = r->I32();
  q.predicate_columns = r->IntVec();
  const int dims = r->I32();
  if (dims < 0 || static_cast<size_t>(dims) > r->remaining() / 16) {
    ThrowMalformed("query rectangle declares " + std::to_string(dims) +
                   " dimensions, payload cannot hold them");
  }
  std::vector<double> lo(static_cast<size_t>(dims));
  std::vector<double> hi(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    lo[static_cast<size_t>(d)] = r->F64();
    hi[static_cast<size_t>(d)] = r->F64();
  }
  q.rect = Rectangle(std::move(lo), std::move(hi));
  return q;
}

void WriteQueryResult(const QueryResult& res, persist::Writer* w) {
  w->F64(res.estimate);
  w->F64(res.ci_half_width);
  w->F64(res.variance_catchup);
  w->F64(res.variance_sample);
  // U64, not Size(): Reader::Size() validates length *prefixes* against the
  // payload size, and these are counters that can legitimately exceed the
  // byte count of the frame carrying them.
  w->U64(res.covered_nodes);
  w->U64(res.partial_leaves);
  w->Bool(res.exact);
  w->Bool(res.ok);
  w->U32(res.error_code);
  w->Str(res.error_detail);
}

QueryResult ReadQueryResult(persist::Reader* r) {
  QueryResult res;
  res.estimate = r->F64();
  res.ci_half_width = r->F64();
  res.variance_catchup = r->F64();
  res.variance_sample = r->F64();
  res.covered_nodes = static_cast<size_t>(r->U64());
  res.partial_leaves = static_cast<size_t>(r->U64());
  res.exact = r->Bool();
  res.ok = r->Bool();
  res.error_code = r->U32();
  res.error_detail = r->Str();
  return res;
}

void WriteTuple(const Tuple& t, persist::Writer* w) {
  w->U64(t.id);
  for (int c = 0; c < kMaxColumns; ++c) w->F64(t[c]);
}

Tuple ReadTuple(persist::Reader* r) {
  Tuple t;
  t.id = r->U64();
  for (int c = 0; c < kMaxColumns; ++c) t[c] = r->F64();
  return t;
}

void WriteApiError(const ApiError& e, persist::Writer* w) {
  w->U32(static_cast<uint32_t>(e.code));
  w->Str(e.detail);
}

ApiError ReadApiError(persist::Reader* r) {
  ApiError e;
  e.code = static_cast<ApiErrorCode>(r->U32());
  e.detail = r->Str();
  return e;
}

void WriteEngineStats(const EngineStats& s, persist::Writer* w) {
  w->Str(s.engine);
  w->U64(s.rows);
  w->U64(s.sample_size);
  w->I32(s.num_templates);
  w->U64(s.inserts);
  w->U64(s.deletes);
  w->U64(s.repartitions);
  w->U64(s.partial_repartitions);
  w->U64(s.partial_repartition_fallbacks);
  w->U64(s.trigger_checks);
  w->U64(s.trigger_fires);
  w->U64(s.reservoir_resamples);
  w->U64(s.background_reopts);
  w->U64(s.background_discards);
  w->U64(s.delta_ops_replayed);
  w->U64(s.catchup_processed);
  w->F64(s.catchup_processing_seconds);
  w->U64(s.parallel_scans);
  w->U64(s.serial_scans);
  w->U64(s.nested_serial_scans);
  w->U64(s.stolen_morsels);
  w->F64(s.last_reopt_seconds);
  w->F64(s.last_blocking_seconds);
  w->F64(s.build_seconds);
  w->F64(s.partition_seconds);
  w->U64(s.archive_bytes);
  w->U64(s.synopsis_bytes);
}

EngineStats ReadEngineStats(persist::Reader* r) {
  EngineStats s;
  s.engine = r->Str();
  s.rows = static_cast<size_t>(r->U64());
  s.sample_size = static_cast<size_t>(r->U64());
  s.num_templates = r->I32();
  s.inserts = r->U64();
  s.deletes = r->U64();
  s.repartitions = r->U64();
  s.partial_repartitions = r->U64();
  s.partial_repartition_fallbacks = r->U64();
  s.trigger_checks = r->U64();
  s.trigger_fires = r->U64();
  s.reservoir_resamples = r->U64();
  s.background_reopts = r->U64();
  s.background_discards = r->U64();
  s.delta_ops_replayed = r->U64();
  s.catchup_processed = static_cast<size_t>(r->U64());
  s.catchup_processing_seconds = r->F64();
  s.parallel_scans = r->U64();
  s.serial_scans = r->U64();
  s.nested_serial_scans = r->U64();
  s.stolen_morsels = r->U64();
  s.last_reopt_seconds = r->F64();
  s.last_blocking_seconds = r->F64();
  s.build_seconds = r->F64();
  s.partition_seconds = r->F64();
  s.archive_bytes = static_cast<size_t>(r->U64());
  s.synopsis_bytes = static_cast<size_t>(r->U64());
  return s;
}

void WriteServingStats(const ServingStats& s, persist::Writer* w) {
  w->U64(s.connections);
  w->U64(s.frames);
  w->U64(s.queries);
  w->U64(s.batches);
  w->U64(s.batched_queries);
  w->U64(s.inserts);
  w->U64(s.deletes);
  w->U64(s.rejected_rate_limit);
  w->U64(s.rejected_overloaded);
  w->U64(s.malformed_frames);
}

ServingStats ReadServingStats(persist::Reader* r) {
  ServingStats s;
  s.connections = r->U64();
  s.frames = r->U64();
  s.queries = r->U64();
  s.batches = r->U64();
  s.batched_queries = r->U64();
  s.inserts = r->U64();
  s.deletes = r->U64();
  s.rejected_rate_limit = r->U64();
  s.rejected_overloaded = r->U64();
  s.malformed_frames = r->U64();
  return s;
}

void WriteStatsReply(const StatsReply& s, persist::Writer* w) {
  WriteEngineStats(s.engine, w);
  WriteServingStats(s.serving, w);
}

StatsReply ReadStatsReply(persist::Reader* r) {
  StatsReply s;
  s.engine = ReadEngineStats(r);
  s.serving = ReadServingStats(r);
  return s;
}

void WriteQueryVec(const std::vector<AggQuery>& qs, persist::Writer* w) {
  w->Size(qs.size());
  for (const AggQuery& q : qs) WriteAggQuery(q, w);
}

std::vector<AggQuery> ReadQueryVec(persist::Reader* r) {
  std::vector<AggQuery> qs(r->Size());
  for (AggQuery& q : qs) q = ReadAggQuery(r);
  return qs;
}

void WriteResultVec(const std::vector<QueryResult>& rs, persist::Writer* w) {
  w->Size(rs.size());
  for (const QueryResult& res : rs) WriteQueryResult(res, w);
}

std::vector<QueryResult> ReadResultVec(persist::Reader* r) {
  std::vector<QueryResult> rs(r->Size());
  for (QueryResult& res : rs) res = ReadQueryResult(r);
  return rs;
}

void WriteTupleVec(const std::vector<Tuple>& ts, persist::Writer* w) {
  w->Size(ts.size());
  for (const Tuple& t : ts) WriteTuple(t, w);
}

std::vector<Tuple> ReadTupleVec(persist::Reader* r) {
  std::vector<Tuple> ts(r->Size());
  for (Tuple& t : ts) t = ReadTuple(r);
  return ts;
}

void WriteConfigEcho(const ConfigKeyEcho& keys, persist::Writer* w) {
  w->Size(keys.size());
  for (const auto& [key, summary] : keys) {
    w->Str(key);
    w->Str(summary);
  }
}

ConfigKeyEcho ReadConfigEcho(persist::Reader* r) {
  ConfigKeyEcho keys(r->Size());
  for (auto& [key, summary] : keys) {
    key = r->Str();
    summary = r->Str();
  }
  return keys;
}

}  // namespace net
}  // namespace janus
