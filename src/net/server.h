#ifndef JANUS_NET_SERVER_H_
#define JANUS_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/config.h"
#include "api/engine.h"
#include "net/socket.h"
#include "net/wire.h"
#include "stream/broker.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {
namespace net {

/// Serving-tier knobs. Parsed from the shared ArgMap like EngineConfig;
/// KnownKeys()/KeyNames() publish the registry so binaries can whitelist
/// these keys with EngineConfig::FromArgs and the README table can list
/// them from the same source of truth.
struct ServerOptions {
  /// TCP port to listen on (loopback); 0 binds an ephemeral port — tests
  /// read the actual one back via AqpServer::port().
  uint16_t listen_port = 0;
  /// Query coalescing window: single-query requests arriving within this
  /// many microseconds are answered by ONE engine QueryBatch call under a
  /// single read-room hold (sharded engines quiesce each shard once per
  /// batch instead of once per query). 0 disables batching — every query
  /// dispatches immediately.
  int64_t batch_window_us = 0;
  /// Upper bound on queries coalesced into one batch; a full batch
  /// dispatches before the window elapses.
  size_t batch_max = 64;
  /// Token-bucket refill rate per tenant, in queries/second (a batch of N
  /// costs N tokens). 0 disables admission control.
  double tenant_rate = 0;
  /// Bucket capacity (burst allowance); 0 defaults to max(1, tenant_rate).
  double tenant_burst = 0;
  /// Cap on queries admitted but not yet answered; beyond it requests get
  /// a typed kRejectedOverloaded reply. 0 disables the cap.
  size_t max_inflight = 0;
  /// Cap on simultaneously served connections; excess connections receive
  /// a typed kRejectedOverloaded error frame and are closed. 0 = unlimited.
  size_t max_clients = 0;

  /// Key registry (key + one-line summary), same shape as
  /// EngineConfig::KnownKeys(); drives the README table and the wire-level
  /// config echo.
  static const std::vector<EngineConfig::KeyInfo>& KnownKeys();
  /// Just the key names — pass as `extra_known` to EngineConfig::FromArgs.
  static std::vector<std::string> KeyNames();

  /// Read the serving keys out of the shared flag parser. Values are
  /// validated (e.g. listen_port must fit a TCP port); violations throw
  /// ApiException(kInvalidArgument).
  static ServerOptions FromArgs(const ArgMap& args);
};

/// The networked multi-tenant serving tier: a multi-threaded TCP server
/// fronting ONE shared AqpEngine through the engine's own read/update-room
/// concurrency contract. Connection threads decode frames (net/wire.h),
/// run requests against the engine and reply in-band — every failure mode
/// (malformed frame, unknown type, rate limit, overload, backend error)
/// produces a typed response frame, never a dropped request.
///
/// Request batching: with batch_window_us > 0, single-query requests from
/// all connections funnel into a dispatcher thread that coalesces them
/// into one engine QueryBatch per window. The engine holds the read room
/// once per batch — for sharded engines that means one per-shard quiesce
/// per batch instead of per query, which is where the serving throughput
/// win under concurrent ingest comes from.
///
/// Admission control: a token bucket per tenant id (frame header field),
/// refilled at tenant_rate tokens/sec up to tenant_burst. Rejected
/// requests get a typed kRejectedRateLimit reply on the same connection —
/// a greedy tenant burns its own bucket and cannot starve a compliant one.
///
/// Streamed updates: with a Broker, insert/delete requests are enqueued
/// into the broker's topics and acknowledged as accepted; a pump thread
/// drives an EngineDriver that applies them to the engine in arrival
/// order (drain-only: results are taken and discarded, queries are served
/// directly, not through the query topic). Without a Broker, updates
/// apply synchronously before the acknowledgment.
class AqpServer {
 public:
  AqpServer(AqpEngine* engine, ServerOptions opts, Broker* broker = nullptr);
  ~AqpServer();

  AqpServer(const AqpServer&) = delete;
  AqpServer& operator=(const AqpServer&) = delete;

  /// Bind, listen and start the accept/dispatcher/pump threads. Throws
  /// ApiException(kNetwork) if the port cannot be bound.
  void Start();

  /// Shut down: stop accepting, unblock and join every connection, flush
  /// the batcher (pending queries are answered, not dropped), drain the
  /// broker topics in stream mode. Idempotent.
  void Stop();

  /// Actual listening port (after Start(); resolves listen_port == 0).
  uint16_t port() const { return port_; }

  /// Snapshot of the serving counters.
  ServingStats stats() const;

 private:
  struct Connection {
    Socket sock;
    std::thread thread;
  };

  struct PendingQuery {
    AggQuery query;
    std::promise<QueryResult> result;
  };

  struct TokenBucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last{};
    bool initialized = false;
  };

  void AcceptLoop();
  void ServeConnection(Socket* sock);
  void DispatchLoop();
  void PumpLoop();

  /// Handle one decoded request; returns the reply payload and sets
  /// *reply_type. Throws ApiException for typed failures (the caller turns
  /// it into an error frame).
  std::vector<uint8_t> HandleRequest(const FrameHeader& header,
                                     const std::vector<uint8_t>& payload,
                                     uint8_t* reply_type);

  /// Token-bucket admission for `cost` queries from `tenant`. Returns
  /// false (with *err filled) when the bucket is dry.
  bool AdmitTenant(uint64_t tenant_id, double cost, ApiError* err);

  /// Answer one query — through the batching dispatcher when a window is
  /// configured, directly otherwise.
  QueryResult RunQuery(const AggQuery& q);

  AqpEngine* const engine_;
  Broker* const broker_;  ///< nullptr = synchronous updates
  const ServerOptions opts_;

  std::unique_ptr<ListenSocket> listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Set only after every connection thread is joined: the dispatcher must
  /// outlive connections so an in-flight RunQuery can never enqueue a
  /// query that nobody answers.
  std::atomic<bool> dispatch_stop_{false};
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread pump_thread_;

  Mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_ GUARDED_BY(conn_mu_);
  size_t active_connections_ GUARDED_BY(conn_mu_) = 0;

  Mutex batch_mu_;
  CondVar batch_cv_;
  std::vector<PendingQuery> pending_ GUARDED_BY(batch_mu_);

  Mutex tenant_mu_;
  std::map<uint64_t, TokenBucket> buckets_ GUARDED_BY(tenant_mu_);

  std::atomic<size_t> inflight_{0};

  mutable Mutex stats_mu_;
  ServingStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace net
}  // namespace janus

#endif  // JANUS_NET_SERVER_H_
