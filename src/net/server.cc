#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/driver.h"
#include "api/error.h"
#include "persist/serde.h"

namespace janus {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMicros(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::microseconds>(now - since)
      .count();
}

/// RAII gauge for the inflight-query cap.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<size_t>* gauge) : gauge_(gauge) {
    gauge_->fetch_add(1, std::memory_order_relaxed);
  }
  ~InflightGuard() { gauge_->fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<size_t>* const gauge_;
};

std::vector<uint8_t> ErrorPayload(const ApiError& err) {
  persist::Writer w;
  WriteApiError(err, &w);
  return w.buffer();
}

}  // namespace

// --- ServerOptions ----------------------------------------------------------

const std::vector<EngineConfig::KeyInfo>& ServerOptions::KnownKeys() {
  static const std::vector<EngineConfig::KeyInfo>* kKeys =
      new std::vector<EngineConfig::KeyInfo>{
          {"listen_port",
           "serving tier TCP port (loopback); 0 binds an ephemeral port"},
          {"batch_window_us",
           "query coalescing window in microseconds; 0 disables batching"},
          {"batch_max", "max queries coalesced into one engine batch"},
          {"tenant_rate",
           "per-tenant admission rate in queries/sec; 0 = unlimited"},
          {"tenant_burst",
           "per-tenant token-bucket capacity; 0 = max(1, tenant_rate)"},
          {"max_inflight",
           "cap on admitted-but-unanswered queries; 0 = uncapped"},
          {"max_clients",
           "cap on simultaneous connections; 0 = unlimited"},
      };
  return *kKeys;
}

std::vector<std::string> ServerOptions::KeyNames() {
  std::vector<std::string> names;
  names.reserve(KnownKeys().size());
  for (const auto& info : KnownKeys()) names.emplace_back(info.key);
  return names;
}

ServerOptions ServerOptions::FromArgs(const ArgMap& args) {
  ServerOptions o;
  const uint64_t port = args.GetUint64("listen_port", o.listen_port);
  if (port > 65535) {
    throw ApiException(ApiErrorCode::kInvalidArgument,
                       "listen_port=" + std::to_string(port) +
                           " does not fit a TCP port");
  }
  o.listen_port = static_cast<uint16_t>(port);
  o.batch_window_us = static_cast<int64_t>(
      args.GetUint64("batch_window_us",
                     static_cast<uint64_t>(o.batch_window_us)));
  o.batch_max = args.GetSize("batch_max", o.batch_max);
  if (o.batch_max == 0) {
    throw ApiException(ApiErrorCode::kInvalidArgument,
                       "batch_max must be at least 1");
  }
  o.tenant_rate = args.GetDouble("tenant_rate", o.tenant_rate);
  o.tenant_burst = args.GetDouble("tenant_burst", o.tenant_burst);
  if (o.tenant_rate < 0 || o.tenant_burst < 0) {
    throw ApiException(ApiErrorCode::kInvalidArgument,
                       "tenant_rate and tenant_burst must be non-negative");
  }
  o.max_inflight = args.GetSize("max_inflight", o.max_inflight);
  o.max_clients = args.GetSize("max_clients", o.max_clients);
  return o;
}

// --- AqpServer --------------------------------------------------------------

AqpServer::AqpServer(AqpEngine* engine, ServerOptions opts, Broker* broker)
    : engine_(engine), broker_(broker), opts_(opts) {}

AqpServer::~AqpServer() { Stop(); }

void AqpServer::Start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  dispatch_stop_.store(false);
  listener_ = std::make_unique<ListenSocket>(opts_.listen_port);
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (opts_.batch_window_us > 0) {
    dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  }
  if (broker_ != nullptr) {
    pump_thread_ = std::thread([this] { PumpLoop(); });
  }
}

void AqpServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  // Unblock every connection thread parked in recv, then join. The
  // dispatcher keeps running through this phase: a connection thread
  // mid-request may still enqueue a query, and a pending query must
  // always be answered.
  {
    MutexLock lock(&conn_mu_);
    for (auto& conn : connections_) conn->sock.Shutdown();
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      MutexLock lock(&conn_mu_);
      if (connections_.empty()) break;
      conn = std::move(connections_.back());
      connections_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  // No producers remain; now the dispatcher may flush and exit.
  dispatch_stop_.store(true);
  {
    MutexLock lock(&batch_mu_);
    batch_cv_.NotifyAll();
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (pump_thread_.joinable()) pump_thread_.join();
  running_.store(false);
}

ServingStats AqpServer::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

void AqpServer::AcceptLoop() {
  while (!stopping_.load()) {
    Socket sock;
    try {
      sock = listener_->AcceptWithTimeout(/*timeout_ms=*/50);
    } catch (const ApiException&) {
      if (stopping_.load()) break;
      continue;  // transient accept failure; keep serving
    }
    if (!sock.valid()) continue;  // poll timeout: re-check the stop flag

    bool over_capacity = false;
    {
      MutexLock lock(&conn_mu_);
      over_capacity =
          opts_.max_clients > 0 && active_connections_ >= opts_.max_clients;
      if (!over_capacity) ++active_connections_;
    }
    if (over_capacity) {
      // Typed rejection on the new connection, then close it: the client
      // sees kRejectedOverloaded, not a silent RST.
      {
        MutexLock lock(&stats_mu_);
        ++stats_.rejected_overloaded;
      }
      try {
        SendFrame(&sock, kErrorReply, 0, 0,
                  ErrorPayload({ApiErrorCode::kRejectedOverloaded,
                                "server connection limit of " +
                                    std::to_string(opts_.max_clients) +
                                    " reached"}));
      } catch (const ApiException&) {
        // Peer vanished before the rejection landed; nothing to clean up.
      }
      continue;
    }

    {
      MutexLock lock(&stats_mu_);
      ++stats_.connections;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      ServeConnection(&raw->sock);
      // Close under conn_mu_ so the peer sees EOF as soon as this
      // connection is done (not at server Stop()) and so Stop()'s
      // shutdown sweep never races the close.
      MutexLock lock(&conn_mu_);
      raw->sock.Close();
      --active_connections_;
    });
    MutexLock lock(&conn_mu_);
    connections_.push_back(std::move(conn));
  }
}

void AqpServer::ServeConnection(Socket* sock) {
  while (!stopping_.load()) {
    FrameHeader header;
    std::vector<uint8_t> payload;
    try {
      if (!RecvFrame(sock, &header, &payload)) break;  // clean EOF
    } catch (const ApiException& e) {
      if (e.code() != ApiErrorCode::kMalformedFrame) break;  // transport
      // A corrupt header or checksum: the byte stream cannot be resynced,
      // so reply with a typed error and close the connection. request_id 0
      // marks "no request could be identified".
      {
        MutexLock lock(&stats_mu_);
        ++stats_.malformed_frames;
      }
      try {
        SendFrame(sock, kErrorReply, 0, 0, ErrorPayload(e.error()));
      } catch (const ApiException&) {
      }
      break;
    }

    {
      MutexLock lock(&stats_mu_);
      ++stats_.frames;
    }

    uint8_t reply_type = kErrorReply;
    std::vector<uint8_t> reply;
    try {
      reply = HandleRequest(header, payload, &reply_type);
    } catch (const std::exception& e) {
      const ApiError err = ApiErrorFromException(e);
      if (err.code == ApiErrorCode::kMalformedFrame ||
          err.code == ApiErrorCode::kPersistence) {
        // kPersistence here means the payload body failed the
        // bounds-checked Reader — a malformed body, not a storage error.
        MutexLock lock(&stats_mu_);
        ++stats_.malformed_frames;
      }
      reply_type = kErrorReply;
      reply = ErrorPayload(
          err.code == ApiErrorCode::kPersistence
              ? ApiError{ApiErrorCode::kMalformedFrame, err.detail}
              : err);
    }

    try {
      SendFrame(sock, reply_type, header.tenant_id, header.request_id, reply);
    } catch (const ApiException&) {
      break;  // peer is gone; the engine-side effects already happened
    }
  }
}

std::vector<uint8_t> AqpServer::HandleRequest(
    const FrameHeader& header, const std::vector<uint8_t>& payload,
    uint8_t* reply_type) {
  persist::Reader r(payload.data(), payload.size());
  persist::Writer w;
  *reply_type = static_cast<uint8_t>(header.type | kReplyBit);

  switch (static_cast<MsgType>(header.type)) {
    case MsgType::kPing:
      return w.buffer();

    case MsgType::kQuery: {
      const AggQuery q = ReadAggQuery(&r);
      ApiError err;
      if (!AdmitTenant(header.tenant_id, 1.0, &err)) {
        throw ApiException(err.code, err.detail);
      }
      if (opts_.max_inflight > 0 &&
          inflight_.load(std::memory_order_relaxed) >= opts_.max_inflight) {
        MutexLock lock(&stats_mu_);
        ++stats_.rejected_overloaded;
        throw ApiException(ApiErrorCode::kRejectedOverloaded,
                           "server is at max_inflight=" +
                               std::to_string(opts_.max_inflight) +
                               " unanswered queries");
      }
      InflightGuard guard(&inflight_);
      const QueryResult res = RunQuery(q);
      {
        MutexLock lock(&stats_mu_);
        ++stats_.queries;
      }
      WriteQueryResult(res, &w);
      return w.buffer();
    }

    case MsgType::kQueryBatch: {
      const std::vector<AggQuery> qs = ReadQueryVec(&r);
      ApiError err;
      if (!AdmitTenant(header.tenant_id, static_cast<double>(qs.size()),
                       &err)) {
        throw ApiException(err.code, err.detail);
      }
      if (opts_.max_inflight > 0 &&
          inflight_.load(std::memory_order_relaxed) >= opts_.max_inflight) {
        MutexLock lock(&stats_mu_);
        ++stats_.rejected_overloaded;
        throw ApiException(ApiErrorCode::kRejectedOverloaded,
                           "server is at max_inflight=" +
                               std::to_string(opts_.max_inflight) +
                               " unanswered queries");
      }
      InflightGuard guard(&inflight_);
      // A client-assembled batch is already coalesced: one engine call,
      // one read-room hold, no reason to route it through the window.
      const std::vector<QueryResult> results = engine_->QueryBatch(qs);
      {
        MutexLock lock(&stats_mu_);
        ++stats_.batches;
        stats_.queries += qs.size();
      }
      WriteResultVec(results, &w);
      return w.buffer();
    }

    case MsgType::kInsert: {
      const std::vector<Tuple> rows = ReadTupleVec(&r);
      if (broker_ != nullptr) {
        // Streamed-update mode: acknowledge enqueue; the pump thread
        // applies the rows to the engine in arrival order.
        broker_->insert_topic()->AppendBatch(rows);
      } else {
        for (const Tuple& t : rows) engine_->Insert(t);
      }
      {
        MutexLock lock(&stats_mu_);
        stats_.inserts += rows.size();
      }
      w.U64(rows.size());
      return w.buffer();
    }

    case MsgType::kDelete: {
      const size_t count = r.Size();
      std::vector<uint64_t> ids(count);
      for (uint64_t& id : ids) id = r.U64();
      uint64_t applied = 0;
      if (broker_ != nullptr) {
        std::vector<Tuple> markers(ids.size());
        for (size_t i = 0; i < ids.size(); ++i) markers[i].id = ids[i];
        broker_->delete_topic()->AppendBatch(markers);
        applied = ids.size();  // enqueued; liveness resolves at apply time
      } else {
        for (uint64_t id : ids) {
          if (engine_->Delete(id)) ++applied;
        }
      }
      {
        MutexLock lock(&stats_mu_);
        stats_.deletes += ids.size();
      }
      w.U64(applied);
      return w.buffer();
    }

    case MsgType::kStats: {
      StatsReply reply;
      reply.engine = engine_->Stats();
      reply.serving = stats();
      WriteStatsReply(reply, &w);
      return w.buffer();
    }

    case MsgType::kConfigEcho: {
      ConfigKeyEcho echo;
      for (const auto& info : EngineConfig::KnownKeys()) {
        echo.emplace_back(info.key, info.summary);
      }
      for (const auto& info : ServerOptions::KnownKeys()) {
        echo.emplace_back(info.key, info.summary);
      }
      WriteConfigEcho(echo, &w);
      return w.buffer();
    }
  }
  throw ApiException(ApiErrorCode::kMalformedFrame,
                     "unknown message type " + std::to_string(header.type));
}

bool AqpServer::AdmitTenant(uint64_t tenant_id, double cost, ApiError* err) {
  if (opts_.tenant_rate <= 0) return true;
  const double burst = opts_.tenant_burst > 0
                           ? opts_.tenant_burst
                           : std::max(1.0, opts_.tenant_rate);
  const auto now = Clock::now();
  MutexLock lock(&tenant_mu_);
  TokenBucket& bucket = buckets_[tenant_id];
  if (!bucket.initialized) {
    bucket.tokens = burst;
    bucket.last = now;
    bucket.initialized = true;
  } else {
    const double dt =
        static_cast<double>(ElapsedMicros(bucket.last, now)) / 1e6;
    bucket.tokens = std::min(burst, bucket.tokens + dt * opts_.tenant_rate);
    bucket.last = now;
  }
  if (bucket.tokens < cost) {
    {
      MutexLock stats_lock(&stats_mu_);
      ++stats_.rejected_rate_limit;
    }
    *err = {ApiErrorCode::kRejectedRateLimit,
            "tenant " + std::to_string(tenant_id) + " exceeded " +
                std::to_string(opts_.tenant_rate) +
                " queries/sec (bucket has " + std::to_string(bucket.tokens) +
                " of " + std::to_string(cost) + " tokens)"};
    return false;
  }
  bucket.tokens -= cost;
  return true;
}

QueryResult AqpServer::RunQuery(const AggQuery& q) {
  if (opts_.batch_window_us <= 0) return engine_->Query(q);
  std::future<QueryResult> fut;
  {
    MutexLock lock(&batch_mu_);
    pending_.push_back(PendingQuery{q, {}});
    fut = pending_.back().result.get_future();
    batch_cv_.NotifyAll();
  }
  return fut.get();
}

void AqpServer::DispatchLoop() {
  for (;;) {
    std::vector<PendingQuery> batch;
    {
      MutexLock lock(&batch_mu_);
      while (pending_.empty() && !dispatch_stop_.load()) {
        batch_cv_.Wait(&batch_mu_);
      }
      if (pending_.empty() && dispatch_stop_.load()) break;
      // The window opens at the first pending query: keep collecting until
      // it elapses, the batch fills, or the server stops (flush, don't
      // drop — a pending query always gets its answer).
      const auto opened = Clock::now();
      while (pending_.size() < opts_.batch_max && !stopping_.load()) {
        const int64_t elapsed = ElapsedMicros(opened, Clock::now());
        const int64_t left = opts_.batch_window_us - elapsed;
        if (left <= 0) break;
        batch_cv_.WaitFor(&batch_mu_, left);
      }
      batch.swap(pending_);
    }
    // One engine call for the whole window: a single read-room hold (and,
    // for sharded engines, a single per-shard quiesce) amortized over
    // every query that arrived in it.
    std::vector<AggQuery> queries;
    queries.reserve(batch.size());
    for (const PendingQuery& p : batch) queries.push_back(p.query);
    const std::vector<QueryResult> results = engine_->QueryBatch(queries);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].result.set_value(results[i]);
    }
    {
      MutexLock lock(&stats_mu_);
      ++stats_.batches;
      stats_.batched_queries += batch.size();
    }
  }
}

void AqpServer::PumpLoop() {
  EngineDriver driver(engine_, broker_);
  while (!stopping_.load()) {
    const size_t consumed = driver.PumpOnce();
    // Drain-only: the serving tier answers queries over the wire, so any
    // results from the (unused) query topic are discarded rather than
    // accumulating forever.
    (void)driver.TakeResults();
    if (consumed == 0) {
      // Park until new inserts arrive or a short timeout passes (the
      // timeout also picks up delete-topic appends and the stop flag).
      broker_->insert_topic()->WaitForRecords(driver.insert_offset(),
                                              /*timeout_us=*/20000);
    }
  }
  // Apply everything acknowledged as "accepted" before shutting down.
  driver.Drain();
  (void)driver.TakeResults();
}

}  // namespace net
}  // namespace janus
