#ifndef JANUS_NET_WIRE_H_
#define JANUS_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/error.h"
#include "data/schema.h"
#include "data/workload.h"
#include "persist/serde.h"

namespace janus {
namespace net {

class Socket;

/// Wire format of the serving tier: length-prefixed, checksummed binary
/// frames over TCP, reusing the persist::Writer/Reader serde (fixed-width
/// little-endian, bit-exact doubles) for payload bodies.
///
/// Frame layout (kFrameHeaderBytes, then payload):
///   bytes  0-3   magic "JAQW" (u32)
///   byte   4     message type (MsgType; replies set kReplyBit)
///   byte   5     flags (reserved, must be 0)
///   bytes  6-7   protocol version (u16, currently 1)
///   bytes  8-11  payload byte count (u32, capped at kMaxPayloadBytes)
///   bytes 12-19  tenant id (u64) — admission control key
///   bytes 20-27  request id (u64) — echoed verbatim in the reply
///   bytes 28-35  FNV-1a 64 checksum of the payload (u64)
///
/// Every header field is validated before a single payload byte is
/// allocated or parsed: wrong magic, unknown version, non-zero flags and
/// hostile payload lengths all fail with ApiException(kMalformedFrame),
/// never a crash or an unbounded allocation. Payload decoding inherits the
/// bounds-checked Reader, so truncated or bit-flipped bodies surface as
/// typed errors too.
inline constexpr uint32_t kWireMagic = 0x5751414Au;  // "JAQW"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 36;
/// Hard cap on a single frame payload; a hostile length prefix can make the
/// server allocate at most this much before the checksum check fails it.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// Request message types. A reply carries the request's type with
/// kReplyBit set; a failed request of any type carries kErrorReply with an
/// ApiError payload.
enum class MsgType : uint8_t {
  kPing = 1,        ///< empty payload; reply: empty payload
  kQuery = 2,       ///< AggQuery; reply: QueryResult
  kQueryBatch = 3,  ///< vector<AggQuery>; reply: vector<QueryResult>
  kInsert = 4,      ///< vector<Tuple>; reply: u64 accepted count
  kDelete = 5,      ///< vector<u64> ids; reply: u64 deleted count
  kStats = 6,       ///< empty; reply: StatsReply
  kConfigEcho = 7,  ///< empty; reply: vector<(key, summary)> config registry
};

inline constexpr uint8_t kReplyBit = 0x80;
inline constexpr uint8_t kErrorReply = 0xFF;

/// Decoded frame header (host representation).
struct FrameHeader {
  uint8_t type = 0;
  uint8_t flags = 0;
  uint16_t version = kWireVersion;
  uint32_t payload_len = 0;
  uint64_t tenant_id = 0;
  uint64_t request_id = 0;
  uint64_t checksum = 0;
};

/// Server-side traffic counters, serialized inside StatsReply so clients
/// can observe admission-control behavior over the wire.
struct ServingStats {
  uint64_t connections = 0;       ///< connections accepted
  uint64_t frames = 0;            ///< request frames decoded
  uint64_t queries = 0;           ///< queries answered (incl. batched)
  uint64_t batches = 0;           ///< engine QueryBatch calls issued
  uint64_t batched_queries = 0;   ///< queries that rode a coalesced batch
  uint64_t inserts = 0;           ///< tuples ingested
  uint64_t deletes = 0;           ///< delete requests applied
  uint64_t rejected_rate_limit = 0;  ///< kRejectedRateLimit replies
  uint64_t rejected_overloaded = 0;  ///< kRejectedOverloaded replies
  uint64_t malformed_frames = 0;     ///< frames failing header/checksum
};

/// Stats reply body: the engine's uniform snapshot plus the server's
/// serving counters.
struct StatsReply {
  EngineStats engine;
  ServingStats serving;
};

// --- frame encode / decode --------------------------------------------------

/// Serialize a complete frame (header + payload) into one send buffer.
std::vector<uint8_t> EncodeFrame(uint8_t type, uint64_t tenant_id,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload);

/// Parse and validate a header block (exactly kFrameHeaderBytes bytes).
/// Throws ApiException(kMalformedFrame) on bad magic, unsupported version,
/// non-zero flags or an oversized payload length.
FrameHeader DecodeHeader(const uint8_t* data, size_t size);

/// Verify the payload against the header's checksum; throws
/// ApiException(kMalformedFrame) on mismatch.
void VerifyPayload(const FrameHeader& h, const std::vector<uint8_t>& payload);

// --- socket-level framing ---------------------------------------------------

/// Send one frame; throws ApiException(kNetwork) on transport failure.
void SendFrame(Socket* sock, uint8_t type, uint64_t tenant_id,
               uint64_t request_id, const std::vector<uint8_t>& payload);

/// Receive one frame. Returns false on clean EOF at a frame boundary
/// (peer closed between frames). Throws ApiException(kMalformedFrame) on a
/// corrupt header/payload and ApiException(kNetwork) on transport errors or
/// mid-frame EOF.
bool RecvFrame(Socket* sock, FrameHeader* header,
               std::vector<uint8_t>* payload);

// --- payload serializers ----------------------------------------------------
//
// All Read* functions decode from a bounds-checked persist::Reader; a
// truncated or garbage body throws persist::PersistError, which the frame
// paths convert to ApiException(kMalformedFrame).

void WriteAggQuery(const AggQuery& q, persist::Writer* w);
AggQuery ReadAggQuery(persist::Reader* r);

void WriteQueryResult(const QueryResult& res, persist::Writer* w);
QueryResult ReadQueryResult(persist::Reader* r);

void WriteTuple(const Tuple& t, persist::Writer* w);
Tuple ReadTuple(persist::Reader* r);

void WriteApiError(const ApiError& e, persist::Writer* w);
ApiError ReadApiError(persist::Reader* r);

void WriteEngineStats(const EngineStats& s, persist::Writer* w);
EngineStats ReadEngineStats(persist::Reader* r);

void WriteServingStats(const ServingStats& s, persist::Writer* w);
ServingStats ReadServingStats(persist::Reader* r);

void WriteStatsReply(const StatsReply& s, persist::Writer* w);
StatsReply ReadStatsReply(persist::Reader* r);

void WriteQueryVec(const std::vector<AggQuery>& qs, persist::Writer* w);
std::vector<AggQuery> ReadQueryVec(persist::Reader* r);

void WriteResultVec(const std::vector<QueryResult>& rs, persist::Writer* w);
std::vector<QueryResult> ReadResultVec(persist::Reader* r);

void WriteTupleVec(const std::vector<Tuple>& ts, persist::Writer* w);
std::vector<Tuple> ReadTupleVec(persist::Reader* r);

using ConfigKeyEcho = std::vector<std::pair<std::string, std::string>>;
void WriteConfigEcho(const ConfigKeyEcho& keys, persist::Writer* w);
ConfigKeyEcho ReadConfigEcho(persist::Reader* r);

}  // namespace net
}  // namespace janus

#endif  // JANUS_NET_WIRE_H_
