#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "api/error.h"

namespace janus {
namespace net {

namespace {

[[noreturn]] void ThrowNetwork(const std::string& what) {
  throw ApiException(ApiErrorCode::kNetwork,
                     what + ": " + std::strerror(errno));
}

/// The serving tier exchanges small request/response frames; Nagle's
/// algorithm would add up to 40ms per round-trip, so disable it.
void DisableNagle(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    throw ApiException(ApiErrorCode::kNetwork,
                       "cannot parse host address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowNetwork("socket()");
  Socket s(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ThrowNetwork("connect to " + host + ":" + std::to_string(port));
  }
  DisableNagle(fd);
  return s;
}

void Socket::SendAll(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-send must surface as a typed
    // error on this connection, not a process-wide SIGPIPE.
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ThrowNetwork("send()");
    }
    sent += static_cast<size_t>(rc);
  }
}

bool Socket::RecvAll(void* data, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ThrowNetwork("recv()");
    }
    if (rc == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw ApiException(ApiErrorCode::kNetwork,
                         "connection closed mid-read (" + std::to_string(got) +
                             " of " + std::to_string(n) + " bytes)");
    }
    got += static_cast<size_t>(rc);
  }
  return true;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowNetwork("socket()");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    ThrowNetwork("bind to 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, backlog) < 0) {
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    ThrowNetwork("listen()");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    ThrowNetwork("getsockname()");
  }
  port_ = ntohs(bound.sin_port);
}

ListenSocket::~ListenSocket() { Close(); }

Socket ListenSocket::AcceptWithTimeout(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) ThrowNetwork("poll() on listen socket");
  if (rc == 0) return Socket();  // timeout: caller re-checks its stop flag
  int client;
  do {
    client = ::accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) ThrowNetwork("accept()");
  DisableNagle(client);
  return Socket(client);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace janus
