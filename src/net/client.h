#ifndef JANUS_NET_CLIENT_H_
#define JANUS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace janus {
namespace net {

/// Blocking client for the serving tier. One connection, one outstanding
/// request at a time (open several clients for concurrency — the server is
/// thread-per-connection).
///
/// Error model mirrors the engine facade: query failures arrive in-band as
/// QueryResult{ok=false, error_code, error_detail} — including the
/// admission-control rejections (kRejectedRateLimit / kRejectedOverloaded),
/// so a rate-limited caller sees a typed result on a live connection, never
/// a reset. Non-query requests throw ApiException carrying the server's
/// typed error; transport failures throw ApiException(kNetwork).
class AqpClient {
 public:
  /// Connect to a serving tier; `tenant_id` stamps every frame and is the
  /// server's admission-control key.
  AqpClient(const std::string& host, uint16_t port, uint64_t tenant_id = 0);

  AqpClient(const AqpClient&) = delete;
  AqpClient& operator=(const AqpClient&) = delete;
  AqpClient(AqpClient&&) = default;
  AqpClient& operator=(AqpClient&&) = default;

  uint64_t tenant_id() const { return tenant_id_; }

  /// Round-trip latency probe; returns nothing, throws on failure.
  void Ping();

  /// Answer one query. Rejections and backend failures come back with
  /// ok=false and the ApiErrorCode in error_code.
  QueryResult Query(const AggQuery& q);

  /// Answer a pre-assembled batch in one frame / one engine call. The
  /// whole batch is admitted or rejected atomically; a rejection yields
  /// one ok=false result per query.
  std::vector<QueryResult> QueryBatch(const std::vector<AggQuery>& queries);

  /// Ingest rows; returns the accepted count. In the server's streamed
  /// mode "accepted" means enqueued to the broker (applied in arrival
  /// order shortly after); otherwise the rows are applied before the ack.
  uint64_t Insert(const std::vector<Tuple>& rows);

  /// Delete by tuple id; returns how many were applied (or enqueued, in
  /// streamed mode).
  uint64_t Delete(const std::vector<uint64_t>& ids);

  /// Engine + serving-tier counters.
  StatsReply Stats();

  /// The server's config-key registry (engine + serving keys with their
  /// one-line summaries) — lets tooling discover the accepted keys without
  /// a matching binary version.
  ConfigKeyEcho ConfigEcho();

 private:
  /// Send one request frame and receive its reply. Validates the echoed
  /// request id and reply type; decodes kErrorReply into *err (returns an
  /// empty payload) so callers choose between in-band and thrown errors.
  std::vector<uint8_t> RoundTrip(MsgType type,
                                 const std::vector<uint8_t>& payload,
                                 ApiError* err);

  /// RoundTrip for callers without an in-band error channel: a typed error
  /// reply becomes a thrown ApiException.
  std::vector<uint8_t> RoundTripOrThrow(MsgType type,
                                        const std::vector<uint8_t>& payload);

  Socket sock_;
  uint64_t tenant_id_;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace janus

#endif  // JANUS_NET_CLIENT_H_
