#include "net/client.h"

#include "api/error.h"
#include "persist/serde.h"

namespace janus {
namespace net {

namespace {

/// Decode a reply payload; a truncated or garbage body (caught by the
/// bounds-checked Reader) surfaces as a typed malformed-frame error, never
/// a raw persistence exception.
template <typename Fn>
auto DecodePayload(const std::vector<uint8_t>& payload, Fn fn)
    -> decltype(fn(static_cast<persist::Reader*>(nullptr))) {
  persist::Reader r(payload.data(), payload.size());
  try {
    return fn(&r);
  } catch (const persist::PersistError& e) {
    throw ApiException(ApiErrorCode::kMalformedFrame,
                       std::string("reply payload does not parse: ") +
                           e.what());
  }
}

}  // namespace

AqpClient::AqpClient(const std::string& host, uint16_t port,
                     uint64_t tenant_id)
    : sock_(Socket::ConnectTcp(host, port)), tenant_id_(tenant_id) {}

std::vector<uint8_t> AqpClient::RoundTrip(MsgType type,
                                          const std::vector<uint8_t>& payload,
                                          ApiError* err) {
  const uint64_t request_id = next_request_id_++;
  SendFrame(&sock_, static_cast<uint8_t>(type), tenant_id_, request_id,
            payload);
  FrameHeader header;
  std::vector<uint8_t> reply;
  if (!RecvFrame(&sock_, &header, &reply)) {
    throw ApiException(ApiErrorCode::kNetwork,
                       "server closed the connection before replying");
  }
  if (header.type == kErrorReply) {
    *err = DecodePayload(reply, [](persist::Reader* r) {
      return ReadApiError(r);
    });
    if (err->ok()) {
      // An error frame must carry an error; a kOk code is itself malformed.
      throw ApiException(ApiErrorCode::kMalformedFrame,
                         "error reply carried ApiErrorCode::kOk");
    }
    return {};
  }
  if (header.type != (static_cast<uint8_t>(type) | kReplyBit)) {
    throw ApiException(ApiErrorCode::kMalformedFrame,
                       "reply type " + std::to_string(header.type) +
                           " does not match request type " +
                           std::to_string(static_cast<uint8_t>(type)));
  }
  if (header.request_id != request_id) {
    throw ApiException(ApiErrorCode::kMalformedFrame,
                       "reply echoes request id " +
                           std::to_string(header.request_id) + ", expected " +
                           std::to_string(request_id));
  }
  *err = ApiError::Ok();
  return reply;
}

std::vector<uint8_t> AqpClient::RoundTripOrThrow(
    MsgType type, const std::vector<uint8_t>& payload) {
  ApiError err;
  std::vector<uint8_t> reply = RoundTrip(type, payload, &err);
  if (!err.ok()) throw ApiException(err.code, err.detail);
  return reply;
}

void AqpClient::Ping() { RoundTripOrThrow(MsgType::kPing, {}); }

QueryResult AqpClient::Query(const AggQuery& q) {
  persist::Writer w;
  WriteAggQuery(q, &w);
  ApiError err;
  const std::vector<uint8_t> reply = RoundTrip(MsgType::kQuery, w.buffer(),
                                               &err);
  if (!err.ok()) {
    QueryResult res;
    res.ok = false;
    res.error_code = static_cast<uint32_t>(err.code);
    res.error_detail = err.detail;
    return res;
  }
  return DecodePayload(reply, [](persist::Reader* r) {
    return ReadQueryResult(r);
  });
}

std::vector<QueryResult> AqpClient::QueryBatch(
    const std::vector<AggQuery>& queries) {
  persist::Writer w;
  WriteQueryVec(queries, &w);
  ApiError err;
  const std::vector<uint8_t> reply =
      RoundTrip(MsgType::kQueryBatch, w.buffer(), &err);
  if (!err.ok()) {
    QueryResult rejected;
    rejected.ok = false;
    rejected.error_code = static_cast<uint32_t>(err.code);
    rejected.error_detail = err.detail;
    return std::vector<QueryResult>(queries.size(), rejected);
  }
  return DecodePayload(reply, [](persist::Reader* r) {
    return ReadResultVec(r);
  });
}

uint64_t AqpClient::Insert(const std::vector<Tuple>& rows) {
  persist::Writer w;
  WriteTupleVec(rows, &w);
  const std::vector<uint8_t> reply =
      RoundTripOrThrow(MsgType::kInsert, w.buffer());
  return DecodePayload(reply, [](persist::Reader* r) { return r->U64(); });
}

uint64_t AqpClient::Delete(const std::vector<uint64_t>& ids) {
  persist::Writer w;
  w.Size(ids.size());
  for (uint64_t id : ids) w.U64(id);
  const std::vector<uint8_t> reply =
      RoundTripOrThrow(MsgType::kDelete, w.buffer());
  return DecodePayload(reply, [](persist::Reader* r) { return r->U64(); });
}

StatsReply AqpClient::Stats() {
  const std::vector<uint8_t> reply = RoundTripOrThrow(MsgType::kStats, {});
  return DecodePayload(reply, [](persist::Reader* r) {
    return ReadStatsReply(r);
  });
}

ConfigKeyEcho AqpClient::ConfigEcho() {
  const std::vector<uint8_t> reply =
      RoundTripOrThrow(MsgType::kConfigEcho, {});
  return DecodePayload(reply, [](persist::Reader* r) {
    return ReadConfigEcho(r);
  });
}

}  // namespace net
}  // namespace janus
