#ifndef JANUS_SAMPLING_RESERVOIR_H_
#define JANUS_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "util/rng.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// What changed in the reservoir after an update; the DPT mirrors these
/// changes into its sample index (Sec. 4.2).
struct ReservoirChange {
  std::optional<Tuple> added;    ///< sample that entered the reservoir
  std::optional<Tuple> evicted;  ///< sample that left the reservoir
  /// The deletion shrank the reservoir to its lower bound m; the caller must
  /// re-sample 2m tuples from archival storage and call Reset().
  bool needs_resample = false;
};

/// Reservoir sampling under insertions and deletions — the AQUA variant of
/// Gibbons, Matias, Poosala used by Sec. 4.2. The pooled sample has a target
/// size of 2m and the invariant m <= |S| <= 2m:
///  * insert: if |S| < 2m add the tuple; otherwise with probability |S|/|D|
///    replace a uniformly random victim;
///  * delete: if the tuple is sampled remove it; when |S| would drop below m
///    signal a full re-sample from the archive.
class DynamicReservoir {
 public:
  /// `target_2m` is the upper size bound (2m); the lower bound is half.
  DynamicReservoir(size_t target_2m, uint64_t seed);

  size_t size() const { return samples_.size(); }
  size_t capacity() const { return target_; }
  size_t lower_bound() const { return target_ / 2; }
  bool Contains(uint64_t id) const { return index_.contains(id); }

  const std::vector<Tuple>& samples() const { return samples_; }

  /// Handle the insertion of `t` into a database that now holds `db_size`
  /// live tuples (including t).
  ReservoirChange OnInsert(const Tuple& t, size_t db_size);

  /// Handle the deletion of the tuple with the given id.
  ReservoirChange OnDelete(uint64_t id);

  /// Replace contents with a fresh archive sample (after needs_resample, or
  /// at (re-)initialization).
  void Reset(std::vector<Tuple> fresh);

  /// Snapshot persistence: slot order and RNG state are part of the state
  /// (victim selection indexes slots), so a restored reservoir makes the
  /// same accept/evict decisions as the uninterrupted one.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: |S| <= 2m, target 2m >= 2, and the id→slot index is
  /// a bijection onto the sample slots (index[id] == slot &&
  /// samples[slot].id == id). Throws InvariantViolation on inconsistency.
  void CheckInvariants() const;

 private:
  /// Test-only backdoor (tests/invariant_audit_test.cc) for corrupting the
  /// slot index in the negative audit tests.
  friend struct InvariantTestPeer;
  size_t target_;  // 2m
  std::vector<Tuple> samples_;
  std::unordered_map<uint64_t, size_t> index_;
  Rng rng_;
};

}  // namespace janus

#endif  // JANUS_SAMPLING_RESERVOIR_H_
