#include "sampling/reservoir.h"

#include <string>

#include "persist/common.h"
#include "util/invariants.h"

namespace janus {

DynamicReservoir::DynamicReservoir(size_t target_2m, uint64_t seed)
    : target_(target_2m < 2 ? 2 : target_2m), rng_(seed) {}

ReservoirChange DynamicReservoir::OnInsert(const Tuple& t, size_t db_size) {
  ReservoirChange change;
  if (samples_.size() < target_) {
    index_[t.id] = samples_.size();
    samples_.push_back(t);
    change.added = t;
    return change;
  }
  // |S| == 2m: accept with probability |S| / |D|.
  const double p =
      db_size == 0 ? 1.0
                   : static_cast<double>(samples_.size()) /
                         static_cast<double>(db_size);
  if (rng_.Bernoulli(p)) {
    const size_t victim = rng_.NextUint64(samples_.size());
    change.evicted = samples_[victim];
    index_.erase(samples_[victim].id);
    samples_[victim] = t;
    index_[t.id] = victim;
    change.added = t;
  }
  return change;
}

ReservoirChange DynamicReservoir::OnDelete(uint64_t id) {
  ReservoirChange change;
  auto it = index_.find(id);
  if (it == index_.end()) return change;
  if (samples_.size() <= lower_bound()) {
    // Removing would violate |S| >= m: ask for a full archive re-sample.
    change.needs_resample = true;
    change.evicted = samples_[it->second];
    return change;
  }
  const size_t pos = it->second;
  change.evicted = samples_[pos];
  const size_t last = samples_.size() - 1;
  if (pos != last) {
    samples_[pos] = samples_[last];
    index_[samples_[pos].id] = pos;
  }
  samples_.pop_back();
  index_.erase(it);
  return change;
}

void DynamicReservoir::Reset(std::vector<Tuple> fresh) {
  samples_ = std::move(fresh);
  index_.clear();
  index_.reserve(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) index_[samples_[i].id] = i;
}

void DynamicReservoir::CheckInvariants() const {
  invariants::Require(target_ >= 2, "DynamicReservoir",
                      "target 2m is " + std::to_string(target_));
  invariants::Require(samples_.size() <= target_, "DynamicReservoir",
                      "holds " + std::to_string(samples_.size()) +
                          " samples, capacity " + std::to_string(target_));
  invariants::Require(index_.size() == samples_.size(), "DynamicReservoir",
                      "index holds " + std::to_string(index_.size()) +
                          " entries for " + std::to_string(samples_.size()) +
                          " slots");
  for (size_t slot = 0; slot < samples_.size(); ++slot) {
    const auto it = index_.find(samples_[slot].id);
    invariants::Require(it != index_.end(), "DynamicReservoir",
                        "sampled id " + std::to_string(samples_[slot].id) +
                            " missing from the slot index");
    invariants::Require(it->second == slot, "DynamicReservoir",
                        "index maps id " + std::to_string(samples_[slot].id) +
                            " to slot " + std::to_string(it->second) +
                            ", actual slot " + std::to_string(slot));
  }
}

void DynamicReservoir::SaveTo(persist::Writer* w) const {
  w->Size(target_);
  rng_.SaveTo(w);
  persist::SaveTupleVec(samples_, w);
}

void DynamicReservoir::LoadFrom(persist::Reader* r) {
  target_ = r->Size();
  if (target_ < 2) {
    throw persist::PersistError("snapshot corrupt: reservoir target < 2");
  }
  rng_.LoadFrom(r);
  Reset(persist::LoadTupleVec(r));
}

}  // namespace janus
