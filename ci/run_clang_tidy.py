#!/usr/bin/env python3
"""clang-tidy runner for the static-analysis CI job and local sweeps.

Drives clang-tidy over the project sources using the compile_commands.json
a CMake configure exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON in
CMakeLists.txt). Two modes:

  full (default)  every .cc under src/, tests/, bench/ that appears in the
                  compilation database.
  diff            only files changed relative to a git ref (default: main),
                  for fast local iteration. Changed headers are covered
                  indirectly: any changed .h reruns every .cc that includes
                  it (cheap textual scan), since clang-tidy only accepts
                  translation units.

The check profile and its documented opt-outs live in .clang-tidy at the
repo root; warnings are promoted to errors there (WarningsAsErrors: '*'),
so any diagnostic fails the run.

Exit codes: 0 clean, 1 diagnostics found, 2 usage/environment problems.
When clang-tidy is not installed the script fails with a clear message
(exit 2) unless --allow-missing is given, which turns the situation into a
skip (exit 0) for environments that cannot install LLVM tooling.

Usage:
  ci/run_clang_tidy.py --build-dir build              # full sweep
  ci/run_clang_tidy.py --build-dir build --mode diff --ref origin/main
"""

import argparse
import json
import multiprocessing
import multiprocessing.pool
import os
import re
import shutil
import subprocess
import sys

SOURCE_DIRS = ("src", "tests", "bench")


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def database_files(build_dir):
    """All project .cc files in the compilation database, repo-relative."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print("error: %s not found - configure with cmake first "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)" % db_path,
              file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        db = json.load(f)
    root = repo_root()
    files = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.split(os.sep, 1)[0] in SOURCE_DIRS and rel.endswith(".cc"):
            files.add(rel)
    return sorted(files)


def changed_files(ref):
    out = subprocess.run(["git", "diff", "--name-only", ref, "--"],
                         capture_output=True, text=True, check=True)
    return [line.strip() for line in out.stdout.splitlines() if line.strip()]


def include_name(header):
    """The path a project source would #include this header by."""
    if header.startswith("src" + os.sep):
        return header.split(os.sep, 1)[1]  # src/ is on the include path
    return header  # tests/... are included repo-relative


def files_for_diff(all_files, ref):
    """Changed .cc files plus every .cc including a changed header."""
    changed = changed_files(ref)
    selected = {f for f in changed if f in set(all_files)}
    headers = [f for f in changed
               if f.endswith(".h") and f.split(os.sep, 1)[0] in SOURCE_DIRS]
    if headers:
        patterns = [re.compile(r'#include\s+"%s"' % re.escape(include_name(h)))
                    for h in headers]
        for cc in all_files:
            try:
                with open(cc) as f:
                    text = f.read()
            except OSError:
                continue
            if any(p.search(text) for p in patterns):
                selected.add(cc)
    return sorted(selected)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--mode", choices=("full", "diff"), default="full")
    ap.add_argument("--ref", default="main",
                    help="git ref to diff against in --mode diff")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy executable to use")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count() - 1))
    ap.add_argument("--allow-missing", action="store_true",
                    help="exit 0 instead of 2 when clang-tidy is absent")
    args = ap.parse_args()

    if shutil.which(args.clang_tidy) is None:
        msg = "clang-tidy not found (looked for %r)" % args.clang_tidy
        if args.allow_missing:
            print("skip: " + msg)
            return 0
        print("error: " + msg + "; install clang-tidy or pass "
              "--allow-missing to skip", file=sys.stderr)
        return 2

    os.chdir(repo_root())
    files = database_files(args.build_dir)
    if args.mode == "diff":
        files = files_for_diff(files, args.ref)
    if not files:
        print("no files to analyze")
        return 0

    print("clang-tidy (%s mode): %d file(s), %d job(s)"
          % (args.mode, len(files), args.jobs))
    failed = []

    def run_one(path):
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout, proc.stderr

    with multiprocessing.pool.ThreadPool(args.jobs) as pool:
        for path, code, out, err in pool.imap_unordered(run_one, files):
            if code != 0 or "warning:" in out or "error:" in out:
                failed.append(path)
                print("== %s ==" % path)
                if out.strip():
                    print(out.strip())
                # clang-tidy puts "N warnings generated" noise on stderr;
                # surface it only for failing files.
                if err.strip():
                    print(err.strip(), file=sys.stderr)
            else:
                print("ok  %s" % path)

    if failed:
        print("\nclang-tidy found problems in %d file(s):" % len(failed))
        for path in sorted(failed):
            print("  " + path)
        return 1
    print("\nclang-tidy clean over %d file(s)." % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
