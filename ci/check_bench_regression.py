#!/usr/bin/env python3
"""Perf-regression gate for the CI bench jobs.

Reads bench JSON lines (one object per line, as emitted by
bench_columnar_scan / bench_shard_scaling / bench_parallel_scan /
bench_reopt_latency / bench_ycsb), extracts one value per metric, and fails
(exit 1) if any metric present in the checked-in baseline regressed more
than --tolerance (default 25%) past its baseline value.

Gating is direction-aware. Throughput metrics (rows_per_sec and friends)
treat the baseline as a *floor*: FAIL when measured < (1 - tolerance) *
baseline. Latency metrics — metric names ending in "_ms", carrying a
"latency_ms" field — treat it as a *ceiling*: FAIL when measured >
(1 + tolerance) * baseline (e.g. a background re-opt whose p99 creeps up
past 125% of the recorded ceiling fails the job). Accuracy metrics —
names ending in "_err", carrying an "error_rel" field (bench_ycsb's
per-phase relative errors) — are ceilings too.

Baselines are conservative bounds, not exact expectations: CI runner
hardware varies run to run, so they are set loosely and ratcheted by
committing the artifact of a healthy run (scaled by the tolerance) when the
fleet improves. Metrics in the measurement that have no baseline entry are
reported but never fail the job, so adding a bench metric does not require
a baseline in the same change.

Improvements (measured beyond baseline in the good direction) are reported
explicitly, and --ratchet-out writes a ready-to-commit ratcheted baseline:
per floor metric max(current, measured * (1 - tolerance)), per ceiling
metric min(current, measured * (1 + tolerance)) — committing the artifact
tightens bounds after a healthy run without ever loosening an existing one.
New metrics enter the ratchet file the same way.

Usage:
  check_bench_regression.py --baseline bench/baseline/bench_baseline.json \
      --measured BENCH_parallel.json [--tolerance 0.25] \
      [--ratchet-out bench_baseline_ratchet.json]

Baseline format: {"<bench>/<metric>/<key>": value, ...} where <key> is
"path=column" / "threads=8" / "shards=4" / "mode=background" style,
matching metric_key(). Values are rows_per_sec for floors, milliseconds for
"_ms" ceilings. Keys do not encode the workload size — the CI job must
invoke each bench with the same flags (rows etc.) the baseline was
recorded under.
"""

import argparse
import json
import sys


def metric_key(obj):
    """Stable identity of one bench measurement line, or None to skip."""
    bench = obj.get("bench")
    if bench is None or "error" in obj:
        return None
    metric = obj.get("metric")
    if metric is None:
        if bench == "shard_scaling" and "inserts_per_sec" in obj:
            metric = "ingest"  # apply-rate lines carry no metric field
        else:
            return None
    if "path" in obj:
        qual = "path=%s" % obj["path"]
    elif "threads" in obj:
        qual = "threads=%s" % obj["threads"]
    elif "shards" in obj:
        qual = "shards=%s" % obj["shards"]
    elif "mode" in obj:
        qual = "mode=%s" % obj["mode"]
    else:
        qual = "default"
    return "%s/%s/%s" % (bench, metric, qual)


def value(obj):
    for field in ("rows_per_sec", "inserts_per_sec", "records_per_sec",
                  "updates_per_sec", "queries_per_sec", "latency_ms",
                  "error_rel", "ratio"):
        if field in obj:
            return float(obj[field])
    return None


def is_ceiling(key):
    """Latency and error metrics gate as ceilings (lower is better); the
    convention is a metric name ending in "_ms" (bench_reopt_latency's query
    percentiles, bench_ycsb's phase latencies) or "_err" (bench_ycsb's
    relative-error accuracy tripwires, carrying an "error_rel" field)."""
    parts = key.split("/")
    return len(parts) >= 2 and (parts[1].endswith("_ms")
                                or parts[1].endswith("_err"))


def load_measurements(paths):
    out = {}
    errors = []
    duplicates = []
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if "error" in obj:
                    errors.append(line)
                    continue
                key = metric_key(obj)
                rate = value(obj)
                if key is None or rate is None:
                    continue
                # Every bench emits exactly one (best-of-reps) line per key:
                # a repeat means two runs were concatenated or a bench looped
                # over the same config twice. Keeping either value could mask
                # a regression behind the better duplicate, so this is fatal.
                if key in out:
                    duplicates.append(
                        "%s: duplicate measurement in %s "
                        "(%.3e then %.3e)" % (key, path, out[key], rate))
                    out[key] = (min if is_ceiling(key) else max)(
                        out[key], rate)
                else:
                    out[key] = rate
    return out, errors, duplicates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--measured", required=True, nargs="+")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="maximum allowed fractional drop vs baseline")
    ap.add_argument("--ratchet-out",
                    help="write a ratcheted baseline JSON here: per metric "
                         "max(current floor, measured * (1 - tolerance))")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    measured, errors, duplicates = load_measurements(args.measured)

    failures = []
    improvements = []
    ratchet = dict(baseline)
    for line in errors:
        # Correctness tripwires from the benches are fatal regardless of
        # throughput.
        failures.append("bench error line: %s" % line)
        print("ERROR %s" % line)
    for line in duplicates:
        failures.append(line)
        print("DUPLICATE %s" % line)
    # A floor of zero (or below) can never fail, so a baseline entry like
    # that silently disables its gate — refuse it rather than report "ok".
    for key, base in sorted(baseline.items()):
        if not isinstance(base, (int, float)) or base <= 0:
            failures.append(
                "%s: baseline value %r is not a positive number "
                "(a non-positive floor can never gate anything)"
                % (key, base))
            print("BAD BASELINE %s = %r" % (key, base))
    print("%-55s %14s %14s %8s" % ("metric", "baseline", "measured", "ratio"))
    for key in sorted(set(baseline) | set(measured)):
        base = baseline.get(key)
        got = measured.get(key)
        ceiling = is_ceiling(key)
        if got is not None:
            if ceiling:
                slack = got * (1.0 + args.tolerance)
                ratchet[key] = min(ratchet.get(key, slack), slack)
            else:
                ratchet[key] = max(ratchet.get(key, 0.0),
                                   got * (1.0 - args.tolerance))
        if base is None:
            print("%-55s %14s %14.3e %8s" % (key, "-", got, "new"))
            continue
        if got is None:
            failures.append("%s: present in baseline but not measured" % key)
            print("%-55s %14.3e %14s %8s" % (key, base, "-", "MISSING"))
            continue
        if not isinstance(base, (int, float)) or base <= 0:
            continue  # already reported as a bad-baseline failure above
        ratio = got / base
        if ceiling:
            status = "ok" if got <= (1.0 + args.tolerance) * base else "FAIL"
        else:
            status = "ok" if got >= (1.0 - args.tolerance) * base else "FAIL"
        print("%-55s %14.3e %14.3e %7.2fx %s" % (key, base, got, ratio,
                                                 status))
        if status == "FAIL":
            if ceiling:
                failures.append(
                    "%s: %.3e ms > %.0f%% of ceiling %.3e ms"
                    % (key, got, 100 * (1.0 + args.tolerance), base))
            else:
                failures.append(
                    "%s: %.3e < %.0f%% of baseline %.3e"
                    % (key, got, 100 * (1.0 - args.tolerance), base))
        elif ceiling and ratio <= 1.0 / (1.0 + args.tolerance):
            improvements.append("%s: %.2fx ceiling" % (key, ratio))
        elif not ceiling and ratio >= 1.0 + args.tolerance:
            # The bound is now conservative by more than the tolerance:
            # worth ratcheting so a future regression to today's baseline
            # would actually fail.
            improvements.append("%s: %.2fx baseline" % (key, ratio))

    if improvements:
        print("\nIMPROVEMENTS (ratchet candidates, >= %.0f%% past bound):"
              % (100 * args.tolerance))
        for line in improvements:
            print("  " + line)
    if args.ratchet_out:
        with open(args.ratchet_out, "w") as f:
            json.dump({k: round(v, 3) for k, v in sorted(ratchet.items())},
                      f, indent=2, sort_keys=True)
            f.write("\n")
        print("\nratcheted baseline written to %s "
              "(commit as bench/baseline/bench_baseline.json to adopt)"
              % args.ratchet_out)

    if failures:
        print("\nPERF REGRESSION (> %.0f%% past bound):"
              % (100 * args.tolerance))
        for f in failures:
            print("  " + f)
        return 1
    print("\nAll metrics within %.0f%% of baseline." % (100 * args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
