#!/usr/bin/env python3
"""Perf-regression gate for the CI bench jobs.

Reads bench JSON lines (one object per line, as emitted by
bench_columnar_scan / bench_shard_scaling / bench_parallel_scan), extracts
per-metric throughput, and fails (exit 1) if any metric present in the
checked-in baseline dropped more than --tolerance (default 25%) below its
baseline value.

The baseline records throughput *floors*, not exact expectations: CI runner
hardware varies run to run, so floors are set conservatively and ratcheted
up by committing the BENCH_parallel.json artifact of a healthy run (scaled
by the tolerance) when the fleet speeds up. Metrics in the measurement that
have no baseline entry are reported but never fail the job, so adding a
bench metric does not require a baseline in the same change.

Improvements (measured above baseline) are reported explicitly, and
--ratchet-out writes a ready-to-commit ratcheted baseline: per metric the
max of the current floor and measured * (1 - tolerance), so committing the
artifact raises floors after a healthy faster run without ever lowering an
existing one. New metrics enter the ratchet file the same way.

Usage:
  check_bench_regression.py --baseline bench/baseline/bench_baseline.json \
      --measured BENCH_parallel.json [--tolerance 0.25] \
      [--ratchet-out bench_baseline_ratchet.json]

Baseline format: {"<bench>/<metric>/<key>": rows_per_sec, ...} where <key>
is "path=column" / "threads=8" / "shards=4" style, matching MetricKey().
"""

import argparse
import json
import sys


def metric_key(obj):
    """Stable identity of one bench measurement line, or None to skip."""
    bench = obj.get("bench")
    if bench is None or "error" in obj:
        return None
    metric = obj.get("metric")
    if metric is None:
        if bench == "shard_scaling" and "inserts_per_sec" in obj:
            metric = "ingest"  # apply-rate lines carry no metric field
        else:
            return None
    if "path" in obj:
        qual = "path=%s" % obj["path"]
    elif "threads" in obj:
        qual = "threads=%s" % obj["threads"]
    elif "shards" in obj:
        qual = "shards=%s" % obj["shards"]
    else:
        qual = "default"
    return "%s/%s/%s" % (bench, metric, qual)


def throughput(obj):
    for field in ("rows_per_sec", "inserts_per_sec", "records_per_sec",
                  "updates_per_sec", "queries_per_sec"):
        if field in obj:
            return float(obj[field])
    return None


def load_measurements(paths):
    out = {}
    errors = []
    duplicates = []
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if "error" in obj:
                    errors.append(line)
                    continue
                key = metric_key(obj)
                rate = throughput(obj)
                if key is None or rate is None:
                    continue
                # Every bench emits exactly one (best-of-reps) line per key:
                # a repeat means two runs were concatenated or a bench looped
                # over the same config twice. Keeping either value could mask
                # a regression behind the faster duplicate, so this is fatal.
                if key in out:
                    duplicates.append(
                        "%s: duplicate measurement in %s "
                        "(%.3e then %.3e)" % (key, path, out[key], rate))
                out[key] = max(out.get(key, 0.0), rate)
    return out, errors, duplicates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--measured", required=True, nargs="+")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="maximum allowed fractional drop vs baseline")
    ap.add_argument("--ratchet-out",
                    help="write a ratcheted baseline JSON here: per metric "
                         "max(current floor, measured * (1 - tolerance))")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    measured, errors, duplicates = load_measurements(args.measured)

    failures = []
    improvements = []
    ratchet = dict(baseline)
    for line in errors:
        # Correctness tripwires from the benches are fatal regardless of
        # throughput.
        failures.append("bench error line: %s" % line)
        print("ERROR %s" % line)
    for line in duplicates:
        failures.append(line)
        print("DUPLICATE %s" % line)
    # A floor of zero (or below) can never fail, so a baseline entry like
    # that silently disables its gate — refuse it rather than report "ok".
    for key, base in sorted(baseline.items()):
        if not isinstance(base, (int, float)) or base <= 0:
            failures.append(
                "%s: baseline value %r is not a positive number "
                "(a non-positive floor can never gate anything)"
                % (key, base))
            print("BAD BASELINE %s = %r" % (key, base))
    print("%-55s %14s %14s %8s" % ("metric", "baseline", "measured", "ratio"))
    for key in sorted(set(baseline) | set(measured)):
        base = baseline.get(key)
        got = measured.get(key)
        if got is not None:
            ratchet[key] = max(ratchet.get(key, 0.0),
                               got * (1.0 - args.tolerance))
        if base is None:
            print("%-55s %14s %14.3e %8s" % (key, "-", got, "new"))
            continue
        if got is None:
            failures.append("%s: present in baseline but not measured" % key)
            print("%-55s %14.3e %14s %8s" % (key, base, "-", "MISSING"))
            continue
        if not isinstance(base, (int, float)) or base <= 0:
            continue  # already reported as a bad-baseline failure above
        ratio = got / base
        status = "ok" if got >= (1.0 - args.tolerance) * base else "FAIL"
        print("%-55s %14.3e %14.3e %7.2fx %s" % (key, base, got, ratio,
                                                 status))
        if status == "FAIL":
            failures.append(
                "%s: %.3e < %.0f%% of baseline %.3e"
                % (key, got, 100 * (1.0 - args.tolerance), base))
        elif base > 0 and ratio >= 1.0 + args.tolerance:
            # The floor is now conservative by more than the tolerance:
            # worth ratcheting so a future regression to today's baseline
            # would actually fail.
            improvements.append("%s: %.2fx baseline" % (key, ratio))

    if improvements:
        print("\nIMPROVEMENTS (ratchet candidates, >= %.0f%% above floor):"
              % (100 * args.tolerance))
        for line in improvements:
            print("  " + line)
    if args.ratchet_out:
        with open(args.ratchet_out, "w") as f:
            json.dump({k: round(v, 3) for k, v in sorted(ratchet.items())},
                      f, indent=2, sort_keys=True)
            f.write("\n")
        print("\nratcheted baseline written to %s "
              "(commit as bench/baseline/bench_baseline.json to adopt)"
              % args.ratchet_out)

    if failures:
        print("\nPERF REGRESSION (> %.0f%% drop):" % (100 * args.tolerance))
        for f in failures:
            print("  " + f)
        return 1
    print("\nAll metrics within %.0f%% of baseline." % (100 * args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
