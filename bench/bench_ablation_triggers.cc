// Ablation: trigger policy. Under a drifting stream (sorted-by-time NYC
// data), compare (a) no re-partitioning (DPT baseline), (b) the beta-drift
// trigger of Sec. 5.4, (c) periodic re-partitioning every 10% — reporting
// P95 error and the number of re-partitions each policy paid for.

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

enum class Policy { kNone, kBetaTrigger, kPeriodic };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kNone:
      return "none";
    case Policy::kBetaTrigger:
      return "beta-trigger";
    case Policy::kPeriodic:
      return "periodic-10%";
  }
  return "?";
}

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 2121);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kNycTaxi);
  std::printf("%-14s %12s %12s %14s %14s\n", "policy", "P95", "median",
              "repartitions", "reopt cost(s)");
  for (Policy policy :
       {Policy::kNone, Policy::kBetaTrigger, Policy::kPeriodic}) {
    EngineConfig cfg = bench::DefaultConfig(tmpl);
    cfg.enable_triggers = policy == Policy::kBetaTrigger;
    cfg.beta = 8.0;
    cfg.trigger_check_interval = 128;
    auto system = EngineRegistry::Create("janus", cfg);
    const size_t step = ds.rows.size() / 10;
    std::vector<Tuple> historical(ds.rows.begin(),
                                  ds.rows.begin() + static_cast<long>(step));
    system->LoadInitial(historical);
    system->Initialize();
    system->RunCatchupToGoal();
    double reopt_cost = 0;
    for (int decile = 2; decile <= 9; ++decile) {
      const size_t lo = step * static_cast<size_t>(decile - 1);
      const size_t hi = step * static_cast<size_t>(decile);
      for (size_t i = lo; i < hi; ++i) system->Insert(ds.rows[i]);
      if (policy == Policy::kPeriodic) {
        system->Reinitialize();
        system->RunCatchupToGoal();
        reopt_cost += system->Stats().last_reopt_seconds;
      }
    }
    system->RunCatchupToGoal();
    std::vector<Tuple> live(ds.rows.begin(),
                            ds.rows.begin() + static_cast<long>(step * 9));
    auto queries = bench::MakeWorkload(live, tmpl.predicate_column,
                                       tmpl.aggregate_column, num_queries,
                                       AggFunc::kSum, 57);
    const auto stats = bench::EvaluateWorkload(*system, live, queries);
    const EngineStats es = system->Stats();
    std::printf("%-14s %12.4f %12.4f %14lu %14.4f\n", PolicyName(policy),
                stats.p95, stats.median,
                static_cast<unsigned long>(es.repartitions +
                                           es.partial_repartitions),
                reopt_cost + es.last_reopt_seconds *
                                 (policy == Policy::kBetaTrigger ? 1 : 0));
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 60000);
  const size_t queries = args.GetSize("queries", 200);
  janus::bench::PrintHeader("Ablation: re-partitioning trigger policy");
  janus::Run(rows, queries);
  return 0;
}
