// Ablation: trigger policy. Under a drifting stream (sorted-by-time NYC
// data), compare (a) no re-partitioning (DPT baseline), (b) the beta-drift
// trigger of Sec. 5.4, (c) periodic re-partitioning every 10% — reporting
// P95 error and the number of re-partitions each policy paid for.

#include <cstdio>

#include "bench/common.h"
#include "core/janus.h"

namespace janus {
namespace {

enum class Policy { kNone, kBetaTrigger, kPeriodic };

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kNone:
      return "none";
    case Policy::kBetaTrigger:
      return "beta-trigger";
    case Policy::kPeriodic:
      return "periodic-10%";
  }
  return "?";
}

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 2121);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kNycTaxi);
  std::printf("%-14s %12s %12s %14s %14s\n", "policy", "P95", "median",
              "repartitions", "reopt cost(s)");
  for (Policy policy :
       {Policy::kNone, Policy::kBetaTrigger, Policy::kPeriodic}) {
    JanusOptions opts;
    opts.spec.agg_column = tmpl.aggregate_column;
    opts.spec.predicate_columns = {tmpl.predicate_column};
    opts.num_leaves = 128;
    opts.sample_rate = 0.01;
    opts.catchup_rate = 0.10;
    opts.enable_triggers = policy == Policy::kBetaTrigger;
    opts.beta = 8.0;
    opts.trigger_check_interval = 128;
    JanusAqp system(opts);
    const size_t step = ds.rows.size() / 10;
    std::vector<Tuple> historical(ds.rows.begin(),
                                  ds.rows.begin() + static_cast<long>(step));
    system.LoadInitial(historical);
    system.Initialize();
    system.RunCatchupToGoal();
    double reopt_cost = 0;
    for (int decile = 2; decile <= 9; ++decile) {
      const size_t lo = step * static_cast<size_t>(decile - 1);
      const size_t hi = step * static_cast<size_t>(decile);
      for (size_t i = lo; i < hi; ++i) system.Insert(ds.rows[i]);
      if (policy == Policy::kPeriodic) {
        system.Reinitialize();
        system.RunCatchupToGoal();
        reopt_cost += system.counters().last_reopt_seconds;
      }
    }
    system.RunCatchupToGoal();
    std::vector<Tuple> live(ds.rows.begin(),
                            ds.rows.begin() + static_cast<long>(step * 9));
    auto queries = bench::MakeWorkload(live, tmpl.predicate_column,
                                       tmpl.aggregate_column, num_queries,
                                       AggFunc::kSum, 57);
    const auto stats = bench::EvaluateWorkload(system, live, queries);
    std::printf("%-14s %12.4f %12.4f %14lu %14.4f\n", PolicyName(policy),
                stats.p95, stats.median,
                static_cast<unsigned long>(system.counters().repartitions +
                                           system.counters()
                                               .partial_repartitions),
                reopt_cost + system.counters().last_reopt_seconds *
                                 (policy == Policy::kBetaTrigger ? 1 : 0));
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const size_t rows = janus::bench::FlagValue(argc, argv, "--rows", 60000);
  const size_t queries =
      janus::bench::FlagValue(argc, argv, "--queries", 200);
  janus::bench::PrintHeader("Ablation: re-partitioning trigger policy");
  janus::Run(rows, queries);
  return 0;
}
