// Ablation (Appendix E): partial vs full re-partitioning. After skewed
// insertions concentrate variance in one region, compare the wall time of a
// full re-partition against partial re-partitions (psi = 1..3) and the
// resulting P95 error. Partial re-partitioning touches only the subtree
// around the problematic leaf and keeps the estimates of unchanged nodes.

#include <cstdio>

#include "bench/common.h"
#include "core/janus.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_queries) {
  std::printf("%-12s %14s %14s %16s\n", "mode", "reopt(s)", "P95",
              "repartitions");
  for (int psi : {0, 1, 2, 3}) {
    auto ds = GenerateUniform(rows, 1, 2323);
    JanusOptions opts;
    opts.spec.agg_column = 1;
    opts.spec.predicate_columns = {0};
    opts.num_leaves = 128;
    opts.sample_rate = 0.02;
    opts.catchup_rate = 0.10;
    opts.enable_triggers = true;
    opts.beta = 4.0;
    opts.trigger_check_interval = 64;
    opts.partial_repartition_psi = psi;
    JanusAqp system(opts);
    system.LoadInitial(ds.rows);
    system.Initialize();
    system.RunCatchupToGoal();

    // Skewed high-variance burst into a narrow region.
    std::vector<Tuple> live = ds.rows;
    Rng rng(5);
    double reopt_seconds = 0;
    for (size_t i = 0; i < rows / 2; ++i) {
      Tuple t;
      t.id = 9000000 + i;
      t[0] = 0.95 + 0.05 * rng.NextDouble();
      t[1] = rng.Bernoulli(0.5) ? 0.0 : 1000.0;
      const uint64_t before = system.counters().repartitions +
                              system.counters().partial_repartitions;
      system.Insert(t);
      const uint64_t after = system.counters().repartitions +
                             system.counters().partial_repartitions;
      if (after > before) {
        reopt_seconds += system.counters().last_reopt_seconds;
      }
      live.push_back(t);
    }
    system.RunCatchupToGoal();
    auto queries =
        bench::MakeWorkload(live, 0, 1, num_queries, AggFunc::kSum, 61);
    const auto stats = bench::EvaluateWorkload(system, live, queries);
    std::printf("%-12s %14.4f %14.4f %16lu\n",
                psi == 0 ? "full" : ("psi=" + std::to_string(psi)).c_str(),
                reopt_seconds, stats.p95,
                static_cast<unsigned long>(system.counters().repartitions +
                                           system.counters()
                                               .partial_repartitions));
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const size_t rows = janus::bench::FlagValue(argc, argv, "--rows", 40000);
  const size_t queries =
      janus::bench::FlagValue(argc, argv, "--queries", 200);
  janus::bench::PrintHeader(
      "Ablation (Appendix E): partial vs full re-partitioning");
  janus::Run(rows, queries);
  return 0;
}
