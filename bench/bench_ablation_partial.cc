// Ablation (Appendix E): partial vs full re-partitioning. After skewed
// insertions concentrate variance in one region, compare the wall time of a
// full re-partition against partial re-partitions (psi = 1..3) and the
// resulting P95 error. Partial re-partitioning touches only the subtree
// around the problematic leaf and keeps the estimates of unchanged nodes.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_queries) {
  std::printf("%-12s %14s %14s %16s\n", "mode", "reopt(s)", "P95",
              "repartitions");
  for (int psi : {0, 1, 2, 3}) {
    auto ds = GenerateUniform(rows, 1, 2323);
    EngineConfig cfg;
    cfg.agg_column = 1;
    cfg.predicate_columns = {0};
    cfg.num_leaves = 128;
    cfg.sample_rate = 0.02;
    cfg.catchup_rate = 0.10;
    cfg.enable_triggers = true;
    cfg.beta = 4.0;
    cfg.trigger_check_interval = 64;
    cfg.partial_repartition_psi = psi;
    auto system = EngineRegistry::Create("janus", cfg);
    system->LoadInitial(ds.rows);
    system->Initialize();
    system->RunCatchupToGoal();

    // Skewed high-variance burst into a narrow region.
    std::vector<Tuple> live = ds.rows;
    Rng rng(5);
    double reopt_seconds = 0;
    for (size_t i = 0; i < rows / 2; ++i) {
      Tuple t;
      t.id = 9000000 + i;
      t[0] = 0.95 + 0.05 * rng.NextDouble();
      t[1] = rng.Bernoulli(0.5) ? 0.0 : 1000.0;
      const EngineStats before = system->Stats();
      system->Insert(t);
      const EngineStats after = system->Stats();
      if (after.repartitions + after.partial_repartitions >
          before.repartitions + before.partial_repartitions) {
        reopt_seconds += after.last_reopt_seconds;
      }
      live.push_back(t);
    }
    system->RunCatchupToGoal();
    auto queries =
        bench::MakeWorkload(live, 0, 1, num_queries, AggFunc::kSum, 61);
    const auto stats = bench::EvaluateWorkload(*system, live, queries);
    const EngineStats es = system->Stats();
    std::printf("%-12s %14.4f %14.4f %16lu\n",
                psi == 0 ? "full" : ("psi=" + std::to_string(psi)).c_str(),
                reopt_seconds, stats.p95,
                static_cast<unsigned long>(es.repartitions +
                                           es.partial_repartitions));
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 40000);
  const size_t queries = args.GetSize("queries", 200);
  janus::bench::PrintHeader(
      "Ablation (Appendix E): partial vs full re-partitioning");
  janus::Run(rows, queries);
  return 0;
}
