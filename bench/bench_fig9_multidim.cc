// Figure 9: multi-dimensional query templates on NASDAQ ETF (Sec. 6.7).
// 5-D template: volume aggregated under predicates on date + the 4 price
// attributes; JanusAQP(256, 10%, 1%) vs the DeepDB stand-in, progress
// 0.3 .. 0.9, reporting median relative error and re-optimization cost.

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kNasdaqEtf, rows, 1111);
  const std::vector<int> preds{0, 1, 2, 3, 4};
  const int agg = 5;  // volume

  EngineConfig cfg;
  cfg.agg_column = agg;
  cfg.predicate_columns = preds;
  cfg.num_leaves = 256;
  cfg.sample_rate = 0.01;
  cfg.catchup_rate = 0.10;
  cfg.enable_triggers = false;
  cfg.model_columns = {0, 1, 2, 3, 4, 5};
  auto system = EngineRegistry::Create("janus", cfg);
  auto spn = EngineRegistry::Create("spn", cfg);

  const size_t step = ds.rows.size() / 10;
  std::vector<Tuple> historical(
      ds.rows.begin(), ds.rows.begin() + static_cast<long>(step * 3));
  system->LoadInitial(historical);
  spn->LoadInitial(historical);
  system->Initialize();
  system->RunCatchupToGoal();
  spn->Initialize();

  std::printf("%-10s %14s %14s %18s %18s\n", "progress", "Janus(med)",
              "SPN(med)", "Janus reopt(s)", "SPN retrain(s)");
  for (int decile = 3; decile <= 9; ++decile) {
    if (decile > 3) {
      const size_t lo = step * static_cast<size_t>(decile - 1);
      const size_t hi = step * static_cast<size_t>(decile);
      for (size_t i = lo; i < hi; ++i) {
        system->Insert(ds.rows[i]);
        spn->Insert(ds.rows[i]);
      }
      system->Reinitialize();
      system->RunCatchupToGoal();
      spn->Reinitialize();
    }
    std::vector<Tuple> live(
        ds.rows.begin(),
        ds.rows.begin() + static_cast<long>(step * decile));

    WorkloadGenerator gen(live, preds, agg);
    WorkloadOptions wopts;
    wopts.num_queries = num_queries;
    wopts.func = AggFunc::kSum;
    wopts.min_count = 50;  // multi-dim queries are selective (Sec. 6.7)
    wopts.seed = 31 + static_cast<uint64_t>(decile);
    auto queries = gen.Generate(live, wopts);

    const auto je = bench::EvaluateWorkload(*system, live, queries);
    const auto se = bench::EvaluateWorkload(*spn, live, queries);
    const EngineStats js = system->Stats();
    const EngineStats ss = spn->Stats();
    std::printf("0.%d        %14.4f %14.4f %18.4f %18.4f\n", decile,
                je.median, se.median,
                js.last_reopt_seconds + js.catchup_processing_seconds,
                ss.build_seconds);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 80000);
  const size_t queries = args.GetSize("queries", 200);
  janus::bench::PrintHeader(
      "Figure 9: 5-D template on ETF — median relative error and "
      "re-optimization cost");
  janus::Run(rows, queries);
  return 0;
}
