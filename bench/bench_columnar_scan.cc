// Columnar archive microbench: row-path (std::vector<Tuple> + id index, the
// pre-refactor DynamicTable layout) vs column-path (ColumnStore + data/scan.h
// kernels) on the archival access patterns the paper's slow paths are built
// from: bulk load, full-scan aggregate, selective rectangle scan and uniform
// sampling. Emits one JSON line per (metric, path, rows) so CI can track the
// speedup:
//
//   {"bench":"columnar_scan","metric":"full_scan_aggregate","path":"column",
//    "rows":1000000,"seconds":0.0042,"rows_per_sec":2.4e8,"checksum":...}
//
// Flags: rows=1000000[,10000000]  reps=3  seed=2024

#include <cstdio>
#include <limits>
#include <unordered_map>
#include <vector>

#include "api/config.h"
#include "data/column_store.h"
#include "data/generators.h"
#include "data/scan.h"
#include "data/table.h"
#include "util/timer.h"

namespace janus {
namespace {

/// The pre-refactor row layout: one std::vector<Tuple> plus an id index.
struct RowTable {
  std::vector<Tuple> live;
  std::unordered_map<uint64_t, size_t> index;

  void Insert(const Tuple& t) {
    index[t.id] = live.size();
    live.push_back(t);
  }

  size_t MemoryBytes() const {
    return live.capacity() * sizeof(Tuple) +
           index.bucket_count() * sizeof(void*) +
           index.size() * (sizeof(uint64_t) + sizeof(size_t) + sizeof(void*));
  }
};

struct Sample {
  double seconds = 0;
  double checksum = 0;
};

template <typename Fn>
Sample Best(int reps, Fn&& fn) {
  Sample best;
  best.seconds = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    const double checksum = fn();
    const double secs = timer.ElapsedSeconds();
    if (secs < best.seconds) best = {secs, checksum};
  }
  return best;
}

void Emit(const char* metric, const char* path, size_t rows,
          const Sample& s) {
  std::printf(
      "{\"bench\":\"columnar_scan\",\"metric\":\"%s\",\"path\":\"%s\","
      "\"rows\":%zu,\"seconds\":%.6f,\"rows_per_sec\":%.3e,"
      "\"checksum\":%.6e}\n",
      metric, path, rows, s.seconds,
      s.seconds > 0 ? static_cast<double>(rows) / s.seconds : 0.0,
      s.checksum);
}

void RunAt(size_t rows, int reps, uint64_t seed) {
  const GeneratedDataset ds = GenerateDataset(DatasetKind::kNycTaxi, rows,
                                              seed);
  const DefaultTemplate tmpl = DefaultTemplateFor(ds.kind);
  const std::vector<int> pred = {tmpl.predicate_column};
  const int agg = tmpl.aggregate_column;

  // --- bulk load -----------------------------------------------------------
  const Sample load_row = Best(reps, [&] {
    RowTable t;
    for (const Tuple& r : ds.rows) t.Insert(r);
    return static_cast<double>(t.live.size());
  });
  Emit("bulk_load", "row", rows, load_row);
  const Sample load_col = Best(reps, [&] {
    DynamicTable t(ds.schema);
    for (const Tuple& r : ds.rows) t.Insert(r);
    return static_cast<double>(t.size());
  });
  Emit("bulk_load", "column", rows, load_col);

  RowTable row_table;
  for (const Tuple& r : ds.rows) row_table.Insert(r);
  DynamicTable col_table(ds.schema);
  for (const Tuple& r : ds.rows) col_table.Insert(r);

  // --- full-scan aggregate (SUM over the whole table) ----------------------
  const Rectangle everything = Rectangle::Infinite(1);
  const Sample full_row = Best(reps, [&] {
    double point[1];
    double sum = 0;
    for (const Tuple& t : row_table.live) {
      ProjectTuple(t, pred, point);
      if (everything.Contains(point)) sum += t[agg];
    }
    return sum;
  });
  Emit("full_scan_aggregate", "row", rows, full_row);
  const Sample full_col = Best(reps, [&] {
    return scan::AggregateInRect(col_table.store(), AggFunc::kSum, agg, pred,
                                 everything)
        .value_or(0);
  });
  Emit("full_scan_aggregate", "column", rows, full_col);

  // --- selective rectangle scan (~1% of the predicate domain) --------------
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (double v : col_table.column(pred[0])) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double mid = lo + 0.5 * (hi - lo);
  const double half = 0.005 * (hi - lo);
  const Rectangle window({mid - half}, {mid + half});
  const Sample sel_row = Best(reps, [&] {
    double point[1];
    size_t count = 0;
    for (const Tuple& t : row_table.live) {
      ProjectTuple(t, pred, point);
      if (window.Contains(point)) ++count;
    }
    return static_cast<double>(count);
  });
  Emit("selective_rect_scan", "row", rows, sel_row);
  const Sample sel_col = Best(reps, [&] {
    return static_cast<double>(
        scan::CountInRect(col_table.store(), pred, window));
  });
  Emit("selective_rect_scan", "column", rows, sel_col);

  // --- uniform sampling (1% of the table, without replacement) -------------
  const size_t k = std::max<size_t>(1, rows / 100);
  const Sample samp_row = Best(reps, [&] {
    Rng rng(seed + 1);
    std::vector<size_t> idx = rng.SampleIndices(row_table.live.size(), k);
    double sum = 0;
    for (size_t i : idx) sum += row_table.live[i][agg];
    return sum;
  });
  Emit("sample_uniform", "row", rows, samp_row);
  const Sample samp_col = Best(reps, [&] {
    Rng rng(seed + 1);
    double sum = 0;
    for (const Tuple& t : col_table.SampleUniform(&rng, k)) sum += t[agg];
    return sum;
  });
  Emit("sample_uniform", "column", rows, samp_col);

  // --- correctness + memory ------------------------------------------------
  // Counts are bit-identical across layouts; the full-scan SUM runs through
  // the SIMD kernels on the columnar path, whose lane accumulators reorder
  // the summation, so it is held to 1e-9 relative instead of bit equality.
  const double sum_rel =
      full_row.checksum != 0
          ? (full_col.checksum - full_row.checksum) / full_row.checksum
          : full_col.checksum;
  if (sum_rel > 1e-9 || sum_rel < -1e-9 ||
      sel_row.checksum != sel_col.checksum) {
    std::printf("{\"bench\":\"columnar_scan\",\"error\":\"row/column "
                "mismatch\",\"rows\":%zu}\n",
                rows);
  }
  std::printf(
      "{\"bench\":\"columnar_scan\",\"metric\":\"archive_bytes\","
      "\"rows\":%zu,\"row\":%zu,\"column\":%zu}\n",
      rows, row_table.MemoryBytes(), col_table.MemoryBytes());
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const std::vector<int> rows_list = args.GetIntList("rows", {1000000});
  const int reps = args.GetInt("reps", 3);
  const uint64_t seed = args.GetUint64("seed", 2024);
  for (int rows : rows_list) {
    if (rows <= 0) continue;
    janus::RunAt(static_cast<size_t>(rows), reps, seed);
  }
  return 0;
}
