#ifndef JANUS_BENCH_COMMON_H_
#define JANUS_BENCH_COMMON_H_

// Shared experiment-harness helpers: dataset/workload setup, error metrics
// and table printing. Every bench binary reproduces one table or figure of
// the paper and prints the same rows/series the paper reports. Binaries
// accept "--rows N" to scale the synthetic datasets (defaults keep the whole
// suite runnable in minutes on a laptop).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/dpt.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/workload.h"
#include "util/stats.h"
#include "util/timer.h"

namespace janus {
namespace bench {

/// Parse "--rows N" / "--queries N" style flags with defaults.
inline size_t FlagValue(int argc, char** argv, const char* name,
                        size_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return def;
}

/// Error summary of one (system, workload) evaluation.
struct ErrorStats {
  double median = 0;
  double p95 = 0;
  double mean_latency_ms = 0;
  size_t evaluated = 0;
};

/// Evaluate a query workload on any system exposing Query(const AggQuery&).
/// Ground truths are computed over `rows` in one batch pass; zero/undefined
/// truths are skipped (Sec. 6.1.2 / 6.7).
template <typename System>
ErrorStats EvaluateWorkload(const System& system,
                            const std::vector<Tuple>& rows,
                            const std::vector<AggQuery>& queries) {
  ErrorStats out;
  const auto truths = ExactAnswers(rows, queries);
  std::vector<double> errors;
  Timer timer;
  double query_seconds = 0;
  size_t answered = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    timer.Reset();
    const QueryResult r = system.Query(queries[i]);
    query_seconds += timer.ElapsedSeconds();
    ++answered;
    const auto rel = RelativeError(truths[i], r.estimate);
    if (rel.has_value()) errors.push_back(*rel);
  }
  out.evaluated = errors.size();
  out.median = Median(errors);
  out.p95 = Percentile(errors, 95);
  out.mean_latency_ms =
      answered > 0 ? query_seconds * 1e3 / static_cast<double>(answered) : 0;
  return out;
}

/// Standard 1-D workload over a dataset's default template.
inline std::vector<AggQuery> MakeWorkload(const std::vector<Tuple>& rows,
                                          int predicate_column,
                                          int aggregate_column,
                                          size_t num_queries, AggFunc func,
                                          uint64_t seed) {
  WorkloadGenerator gen(rows, {predicate_column}, aggregate_column);
  WorkloadOptions opts;
  opts.num_queries = num_queries;
  opts.func = func;
  // Queries whose true population is below the sampling resolution are
  // uninformative for every method; scale the floor with the table size
  // (the paper's 2000-query workloads over millions of rows implicitly do
  // the same, Sec. 6.7).
  opts.min_count = std::max<size_t>(20, rows.size() / 500);
  opts.seed = seed;
  return gen.Generate(rows, opts);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace bench
}  // namespace janus

#endif  // JANUS_BENCH_COMMON_H_
