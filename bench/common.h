#ifndef JANUS_BENCH_COMMON_H_
#define JANUS_BENCH_COMMON_H_

// Shared experiment-harness helpers: dataset/workload setup, error metrics
// and table printing. Every bench binary reproduces one table or figure of
// the paper and prints the same rows/series the paper reports.
//
// All systems are driven through the AqpEngine facade and created via
// EngineRegistry; flags are parsed with the shared api::ArgMap parser, so
// "--rows N" and "rows=N" both work on every binary.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/engine.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/scan.h"
#include "data/workload.h"
#include "util/stats.h"
#include "util/timer.h"

namespace janus {
namespace bench {

/// Error summary of one (engine, workload) evaluation.
struct ErrorStats {
  double median = 0;
  double p95 = 0;
  double mean_latency_ms = 0;
  size_t evaluated = 0;
};

/// Evaluate a query workload against any engine. Ground truths run through
/// the vectorized scan kernels (data/scan.h): `rows` are transposed once
/// into a scratch ColumnStore, then each query scans only its own columns.
/// Zero/undefined truths are skipped (Sec. 6.1.2 / 6.7). Queries run one by
/// one so the mean latency is a per-query figure (use AqpEngine::QueryBatch
/// for throughput runs).
inline ErrorStats EvaluateWorkload(const AqpEngine& engine,
                                   const std::vector<Tuple>& rows,
                                   const std::vector<AggQuery>& queries) {
  ErrorStats out;
  // Ground truths via the morsel-parallel layer on the shared scan pool:
  // transpose once, then fan the queries out one per worker slot.
  const auto truths =
      ExactAnswers(scan::ToColumnStore(rows, queries), queries,
                   scan::DefaultExec());
  std::vector<double> errors;
  Timer timer;
  double query_seconds = 0;
  size_t answered = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    timer.Reset();
    const QueryResult r = engine.Query(queries[i]);
    query_seconds += timer.ElapsedSeconds();
    ++answered;
    const auto rel = RelativeError(truths[i], r.estimate);
    if (rel.has_value()) errors.push_back(*rel);
  }
  out.evaluated = errors.size();
  out.median = Median(errors);
  out.p95 = Percentile(errors, 95);
  out.mean_latency_ms =
      answered > 0 ? query_seconds * 1e3 / static_cast<double>(answered) : 0;
  return out;
}

/// Standard 1-D workload over a dataset's default template.
inline std::vector<AggQuery> MakeWorkload(const std::vector<Tuple>& rows,
                                          int predicate_column,
                                          int aggregate_column,
                                          size_t num_queries, AggFunc func,
                                          uint64_t seed) {
  WorkloadGenerator gen(rows, {predicate_column}, aggregate_column);
  WorkloadOptions opts;
  opts.num_queries = num_queries;
  opts.func = func;
  // Queries whose true population is below the sampling resolution are
  // uninformative for every method; scale the floor with the table size
  // (the paper's 2000-query workloads over millions of rows implicitly do
  // the same, Sec. 6.7).
  opts.min_count = std::max<size_t>(20, rows.size() / 500);
  opts.seed = seed;
  // Rejection counting on the shared scan pool; the accepted workload is
  // identical to the serial path's (threshold counts are exact).
  opts.exec = scan::DefaultExec();
  return gen.Generate(rows, opts);
}

/// Engine config for a dataset's default 1-D template, with the knobs the
/// paper's experiments share (128 leaves, 1% sample, 10% catch-up goal,
/// triggers off unless the experiment is about them). Passing the dataset's
/// schema sizes every backend's columnar archive to exactly the dataset
/// width instead of the kMaxColumns fallback.
inline EngineConfig DefaultConfig(const DefaultTemplate& tmpl,
                                  const Schema& schema = Schema{}) {
  EngineConfig cfg;
  cfg.schema = schema;
  cfg.agg_column = tmpl.aggregate_column;
  cfg.predicate_columns = {tmpl.predicate_column};
  cfg.num_leaves = 128;
  cfg.sample_rate = 0.01;
  cfg.catchup_rate = 0.10;
  cfg.enable_triggers = false;
  return cfg;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace bench
}  // namespace janus

#endif  // JANUS_BENCH_COMMON_H_
