// Figure 5 (left): insertion/deletion throughput (requests/s) with a pool of
// 12 worker threads, as a function of the existing-data ratio 0.1 .. 0.9.
// The paper's observation: throughput is stable regardless of how much data
// already exists (updates cost O(log k) + per-leaf work only).

#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "util/thread_pool.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_threads) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 555);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kNycTaxi);
  std::printf("%-8s %18s %18s\n", "ratio", "insert(req/s)", "delete(req/s)");
  for (int decile = 1; decile <= 9; ++decile) {
    const size_t existing = rows * static_cast<size_t>(decile) / 10;
    EngineConfig cfg = bench::DefaultConfig(tmpl);  // concurrent mode
    auto system = EngineRegistry::Create("janus", cfg);
    std::vector<Tuple> historical(
        ds.rows.begin(), ds.rows.begin() + static_cast<long>(existing));
    system->LoadInitial(historical);
    system->Initialize();
    system->RunCatchupToGoal();

    // Batch of inserts: fresh tuples beyond the dataset.
    const size_t batch = 40000;
    std::vector<Tuple> inserts;
    inserts.reserve(batch);
    Rng rng(static_cast<uint64_t>(decile) * 77 + 1);
    for (size_t i = 0; i < batch; ++i) {
      Tuple t = ds.rows[rng.NextUint64(ds.rows.size())];
      t.id = 10000000 + static_cast<uint64_t>(decile) * batch + i;
      inserts.push_back(t);
    }

    AqpEngine* engine = system.get();
    ThreadPool pool(num_threads);
    Timer timer;
    const size_t shard = batch / num_threads;
    for (size_t w = 0; w < num_threads; ++w) {
      pool.Submit([engine, &inserts, w, shard] {
        const size_t lo = w * shard;
        for (size_t i = lo; i < lo + shard; ++i) engine->Insert(inserts[i]);
      });
    }
    pool.WaitIdle();
    const double insert_rate =
        static_cast<double>(shard * num_threads) / timer.ElapsedSeconds();

    // Deletions of the tuples just inserted.
    timer.Reset();
    for (size_t w = 0; w < num_threads; ++w) {
      pool.Submit([engine, &inserts, w, shard] {
        const size_t lo = w * shard;
        for (size_t i = lo; i < lo + shard; ++i) {
          engine->Delete(inserts[i].id);
        }
      });
    }
    pool.WaitIdle();
    const double delete_rate =
        static_cast<double>(shard * num_threads) / timer.ElapsedSeconds();

    std::printf("0.%d      %18.0f %18.0f\n", decile, insert_rate,
                delete_rate);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 200000);
  const size_t threads = args.GetSize("threads", 12);
  janus::bench::PrintHeader(
      "Figure 5 (left): update throughput vs existing-data ratio, "
      "multi-threaded");
  janus::Run(rows, threads);
  return 0;
}
