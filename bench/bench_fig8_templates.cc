// Figure 8: robustness to dynamic query templates on NYC Taxi (Sec. 6.6).
//   Left:   predicate-attribute change — PickupOverPickup (native),
//           DropoffOverPickup (mismatched => uniform-sample fallback),
//           DropoffOverDropoff (after re-partitioning on the new attribute).
//   Middle: aggregation-attribute change — Same vs Different (tracked
//           statistics for both attributes, Sec. 5.5 method 2.i).
//   Right:  aggregation-function change — SUM / CNT / AVG on one tree.

#include <cstdio>
#include <memory>
#include <utility>

#include "bench/common.h"

namespace janus {
namespace {

constexpr int kPickup = 0;    // pickup_time
constexpr int kDropoff = 1;   // dropoff_time
constexpr int kDistance = 2;  // trip_distance
constexpr int kFare = 4;      // fare

std::unique_ptr<AqpEngine> MakeSystem(const std::vector<Tuple>& live,
                                      int predicate_column,
                                      std::vector<int> extra_tracked) {
  EngineConfig cfg;
  cfg.agg_column = kDistance;
  cfg.predicate_columns = {predicate_column};
  cfg.num_leaves = 128;
  cfg.sample_rate = 0.01;
  cfg.catchup_rate = 0.10;
  cfg.enable_triggers = false;
  cfg.extra_tracked_columns = std::move(extra_tracked);
  auto system = EngineRegistry::Create("janus", cfg);
  system->LoadInitial(live);
  system->Initialize();
  system->RunCatchupToGoal();
  return system;
}

std::vector<AggQuery> Workload(const std::vector<Tuple>& live, int pred,
                               int agg, AggFunc f, uint64_t seed,
                               size_t num_queries) {
  WorkloadGenerator gen(live, {pred}, agg);
  WorkloadOptions o;
  o.num_queries = num_queries;
  o.func = f;
  o.min_count = 20;
  o.seed = seed;
  return gen.Generate(live, o);
}

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 999);
  std::printf("%-10s %18s %20s %20s | %10s %12s | %8s %8s %8s\n", "progress",
              "PickupOverPickup", "DropoffOverPickup", "DropoffOverDropoff",
              "SameAgg", "DiffAgg", "SUM", "CNT", "AVG");
  for (int decile = 1; decile <= 9; ++decile) {
    const size_t limit = ds.rows.size() * static_cast<size_t>(decile) / 10;
    std::vector<Tuple> live(ds.rows.begin(),
                            ds.rows.begin() + static_cast<long>(limit));
    // Synopsis on pickup_time (tracks fare too for the middle plot).
    auto on_pickup = MakeSystem(live, kPickup, {kFare});
    // Synopsis re-partitioned for dropoff_time (the "after re-partition"
    // curve).
    auto on_dropoff = MakeSystem(live, kDropoff, {});

    const uint64_t seed = 100 + static_cast<uint64_t>(decile);
    auto q_pickup = Workload(live, kPickup, kDistance, AggFunc::kSum, seed,
                             num_queries);
    auto q_dropoff = Workload(live, kDropoff, kDistance, AggFunc::kSum,
                              seed + 1, num_queries);
    auto q_fare =
        Workload(live, kPickup, kFare, AggFunc::kSum, seed + 2, num_queries);
    auto q_cnt = Workload(live, kPickup, kDistance, AggFunc::kCount, seed + 3,
                          num_queries);
    auto q_avg = Workload(live, kPickup, kDistance, AggFunc::kAvg, seed + 4,
                          num_queries);

    const auto pp = bench::EvaluateWorkload(*on_pickup, live, q_pickup);
    const auto dp = bench::EvaluateWorkload(*on_pickup, live, q_dropoff);
    const auto dd = bench::EvaluateWorkload(*on_dropoff, live, q_dropoff);
    const auto same = bench::EvaluateWorkload(*on_pickup, live, q_pickup);
    const auto diff = bench::EvaluateWorkload(*on_pickup, live, q_fare);
    const auto s_sum = pp;
    const auto s_cnt = bench::EvaluateWorkload(*on_pickup, live, q_cnt);
    const auto s_avg = bench::EvaluateWorkload(*on_pickup, live, q_avg);

    std::printf(
        "0.%d        %18.4f %20.4f %20.4f | %10.4f %12.4f | %8.4f %8.4f "
        "%8.4f\n",
        decile, pp.p95, dp.p95, dd.p95, same.p95, diff.p95, s_sum.p95,
        s_cnt.p95, s_avg.p95);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 100000);
  const size_t queries = args.GetSize("queries", 300);
  janus::bench::PrintHeader(
      "Figure 8: dynamic query templates (P95 relative error)");
  janus::Run(rows, queries);
  return 0;
}
