// Ablation: the max-variance index M (Sec. 5.3.1 / Appendix D.1).
// Google-benchmark micro-benchmarks for the core primitives the optimizer
// and the triggers call in their inner loops: M(R) probes per aggregate,
// index updates, and full partitioning requests.

#include <benchmark/benchmark.h>

#include "core/max_variance.h"
#include "core/partitioner_1d.h"
#include "core/partitioner_kd.h"
#include "util/rng.h"

namespace janus {
namespace {

std::vector<KdPoint> RandomPoints(int dims, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KdPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KdPoint p;
    p.id = i;
    for (int d = 0; d < dims; ++d) p.x[d] = rng.NextDouble();
    p.a = rng.LogNormal(0, 1);
    pts.push_back(p);
  }
  return pts;
}

void BM_MaxVarProbe1d(benchmark::State& state, AggFunc focus) {
  const size_t m = static_cast<size_t>(state.range(0));
  MaxVarianceIndex::Options o;
  o.dims = 1;
  o.focus = focus;
  MaxVarianceIndex idx(o);
  idx.Build(RandomPoints(1, m, 7));
  Rng rng(13);
  for (auto _ : state) {
    const size_t lo = rng.NextUint64(m / 2);
    const size_t hi = lo + m / 2;
    benchmark::DoNotOptimize(idx.MaxVarianceRankRange(lo, hi, focus));
  }
}
BENCHMARK_CAPTURE(BM_MaxVarProbe1d, SUM, AggFunc::kSum)->Range(1 << 10, 1 << 15);
BENCHMARK_CAPTURE(BM_MaxVarProbe1d, COUNT, AggFunc::kCount)
    ->Range(1 << 10, 1 << 15);
BENCHMARK_CAPTURE(BM_MaxVarProbe1d, AVG, AggFunc::kAvg)->Range(1 << 10, 1 << 15);

void BM_MaxVarProbeKd(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  MaxVarianceIndex::Options o;
  o.dims = dims;
  MaxVarianceIndex idx(o);
  idx.Build(RandomPoints(dims, 8192, 11));
  Rng rng(17);
  std::vector<double> lo(static_cast<size_t>(dims)),
      hi(static_cast<size_t>(dims));
  for (auto _ : state) {
    for (int d = 0; d < dims; ++d) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      lo[static_cast<size_t>(d)] = a;
      hi[static_cast<size_t>(d)] = b;
    }
    benchmark::DoNotOptimize(
        idx.MaxVariance(Rectangle(lo, hi), AggFunc::kSum));
  }
}
BENCHMARK(BM_MaxVarProbeKd)->DenseRange(1, 5);

void BM_IndexUpdate(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  MaxVarianceIndex::Options o;
  o.dims = dims;
  MaxVarianceIndex idx(o);
  idx.Build(RandomPoints(dims, 8192, 19));
  Rng rng(23);
  uint64_t next_id = 1 << 20;
  for (auto _ : state) {
    KdPoint p;
    p.id = next_id++;
    for (int d = 0; d < dims; ++d) p.x[d] = rng.NextDouble();
    p.a = rng.LogNormal(0, 1);
    idx.Insert(p);
    benchmark::DoNotOptimize(idx.Delete(p));
  }
}
BENCHMARK(BM_IndexUpdate)->DenseRange(1, 5);

void BM_Partition1dBs(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  MaxVarianceIndex::Options o;
  o.dims = 1;
  o.focus = AggFunc::kSum;
  MaxVarianceIndex idx(o);
  idx.Build(RandomPoints(1, m, 29));
  Partitioner1dOptions opts;
  opts.num_leaves = 128;
  opts.data_size = m * 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPartition1D(idx, opts));
  }
}
BENCHMARK(BM_Partition1dBs)->Range(1 << 11, 1 << 14);

void BM_PartitionKd(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  MaxVarianceIndex::Options o;
  o.dims = dims;
  o.focus = AggFunc::kSum;
  MaxVarianceIndex idx(o);
  idx.Build(RandomPoints(dims, 8192, 31));
  PartitionerKdOptions opts;
  opts.num_leaves = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPartitionKd(idx, opts));
  }
}
BENCHMARK(BM_PartitionKd)->DenseRange(1, 5);

}  // namespace
}  // namespace janus

BENCHMARK_MAIN();
