// Figure 6: median relative error of JanusAQP after deleting the last p% of
// the first-50% load (p = 1..9), for the three datasets. Deletions here are
// spread over the predicate domain, so the error stays flat — the scenario
// where re-optimization is *not* needed (contrast with Figure 10).

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_queries) {
  std::printf("%-10s %14s %14s %14s\n", "deleted", "Intel", "ETF", "NYCTaxi");
  for (int p = 1; p <= 9; ++p) {
    double medians[3] = {0, 0, 0};
    int col = 0;
    for (auto kind :
         {DatasetKind::kIntelWireless, DatasetKind::kNasdaqEtf,
          DatasetKind::kNycTaxi}) {
      auto ds = GenerateDataset(kind, rows, 777);
      const DefaultTemplate tmpl = DefaultTemplateFor(kind);
      const size_t half = ds.rows.size() / 2;

      auto system = EngineRegistry::Create("janus", bench::DefaultConfig(tmpl));
      std::vector<Tuple> historical(
          ds.rows.begin(), ds.rows.begin() + static_cast<long>(half));
      system->LoadInitial(historical);
      system->Initialize();
      system->RunCatchupToGoal();

      // Delete the last p% of the first 50% (Sec. 6.4). The victims are the
      // most recently loaded tuples; ground truth is over what remains.
      const size_t keep = half - half * static_cast<size_t>(p) / 100;
      for (size_t i = keep; i < half; ++i) system->Delete(ds.rows[i].id);
      std::vector<Tuple> live(ds.rows.begin(),
                              ds.rows.begin() + static_cast<long>(keep));

      auto queries = bench::MakeWorkload(live, tmpl.predicate_column,
                                         tmpl.aggregate_column, num_queries,
                                         AggFunc::kSum,
                                         static_cast<uint64_t>(p));
      const auto stats = bench::EvaluateWorkload(*system, live, queries);
      medians[col++] = stats.median;
    }
    std::printf("%d%%        %14.4f %14.4f %14.4f\n", p, medians[0],
                medians[1], medians[2]);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 60000);
  const size_t queries = args.GetSize("queries", 300);
  janus::bench::PrintHeader(
      "Figure 6: median relative error vs deletion percentage (uniform "
      "deletions)");
  janus::Run(rows, queries);
  return 0;
}
