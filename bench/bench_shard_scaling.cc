// Shard-scaling bench: insert throughput and query latency of the sharded
// engine at 1/2/4/8 shards against the plain inner engine, under
// multi-threaded producers. Emits one machine-readable JSON line per
// configuration (and a human table) so the perf trajectory can be tracked
// across PRs:
//
//   {"bench":"shard_scaling","engine":"sharded:janus","shards":4,...}
//
// Two throughput figures per run:
//   enqueue_per_sec  - producer-observed admission rate (sharded ingest is
//                      an enqueue; bounded queues apply backpressure)
//   inserts_per_sec  - end-to-end apply rate: enqueue plus draining every
//                      shard to its quiesce point (the honest figure;
//                      scaling with shards needs >= shards cores)

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"

namespace janus {
namespace {

struct RunResult {
  std::string engine;
  int shards = 0;  ///< 0 = plain (unsharded) engine
  size_t producers = 0;
  double enqueue_per_sec = 0;
  double inserts_per_sec = 0;
  double query_p50_ms = 0;
  double query_p99_ms = 0;
};

std::vector<Tuple> FreshTuples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.id = 50000000 + i;
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    out.push_back(t);
  }
  return out;
}

RunResult RunOne(const std::string& engine_name, int shards,
                 size_t producers, const std::vector<Tuple>& historical,
                 const std::vector<Tuple>& inserts,
                 const std::vector<AggQuery>& queries) {
  EngineConfig cfg;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 64;
  cfg.sample_rate = 0.01;
  cfg.enable_triggers = false;
  cfg.num_shards = shards > 0 ? shards : 1;
  auto engine = EngineRegistry::Create(engine_name, cfg);
  engine->LoadInitial(historical);
  engine->Initialize();
  engine->RunCatchupToGoal();

  // Insert storm: `producers` threads, disjoint slices, in parallel.
  AqpEngine* raw = engine.get();
  const size_t per = inserts.size() / producers;
  Timer timer;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([raw, &inserts, p, per, producers] {
      const size_t lo = p * per;
      const size_t hi = p + 1 == producers ? inserts.size() : lo + per;
      for (size_t i = lo; i < hi; ++i) raw->Insert(inserts[i]);
    });
  }
  for (auto& t : threads) t.join();
  const double enqueue_seconds = timer.ElapsedSeconds();
  // Stats() drains every shard to its quiesce point; for plain engines the
  // inserts were applied synchronously and this is (nearly) free.
  engine->Stats();
  const double total_seconds = timer.ElapsedSeconds();

  // Query latency, serially, after the storm settled.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(queries.size());
  Timer qtimer;
  for (const AggQuery& q : queries) {
    qtimer.Reset();
    (void)raw->Query(q);
    latencies_ms.push_back(qtimer.ElapsedSeconds() * 1e3);
  }

  RunResult r;
  r.engine = engine_name;
  r.shards = shards;
  r.producers = producers;
  r.enqueue_per_sec =
      static_cast<double>(inserts.size()) / enqueue_seconds;
  r.inserts_per_sec = static_cast<double>(inserts.size()) / total_seconds;
  r.query_p50_ms = Percentile(latencies_ms, 50);
  r.query_p99_ms = Percentile(latencies_ms, 99);
  return r;
}

void EmitJson(const RunResult& r, size_t rows, size_t inserts) {
  std::printf(
      "{\"bench\":\"shard_scaling\",\"engine\":\"%s\",\"shards\":%d,"
      "\"rows\":%zu,\"inserts\":%zu,\"producers\":%zu,"
      "\"enqueue_per_sec\":%.0f,\"inserts_per_sec\":%.0f,"
      "\"query_p50_ms\":%.4f,\"query_p99_ms\":%.4f}\n",
      r.engine.c_str(), r.shards, rows, inserts, r.producers,
      r.enqueue_per_sec, r.inserts_per_sec, r.query_p50_ms, r.query_p99_ms);
}

void Run(const std::string& inner, size_t rows, size_t num_inserts,
         size_t num_queries, size_t producers) {
  auto ds = GenerateUniform(rows, 1, 909);
  const auto inserts = FreshTuples(num_inserts, 910);
  const auto queries =
      bench::MakeWorkload(ds.rows, 0, 1, num_queries, AggFunc::kSum, 911);

  std::printf("%-16s %7s %10s %14s %14s %12s %12s\n", "engine", "shards",
              "producers", "enqueue/s", "inserts/s", "query p50 ms",
              "query p99 ms");

  std::vector<RunResult> results;
  // Only janus accepts concurrent Insert() on a plain engine (engine.h
  // contract); other baselines are driven single-threaded. Sharded ingest
  // is an enqueue and takes full producer parallelism for every backend.
  const size_t plain_producers = inner == "janus" ? producers : 1;
  results.push_back(
      RunOne(inner, 0, plain_producers, ds.rows, inserts, queries));
  for (int shards : {1, 2, 4, 8}) {
    results.push_back(RunOne("sharded:" + inner, shards, producers, ds.rows,
                             inserts, queries));
  }
  for (const RunResult& r : results) {
    std::printf("%-16s %7d %10zu %14.0f %14.0f %12.4f %12.4f\n",
                r.engine.c_str(), r.shards, r.producers, r.enqueue_per_sec,
                r.inserts_per_sec, r.query_p50_ms, r.query_p99_ms);
  }

  const double base = results.front().inserts_per_sec;
  std::printf("\napply-rate speedup vs plain %s: ", inner.c_str());
  for (size_t i = 1; i < results.size(); ++i) {
    std::printf("%dx shards=%.2f  ", results[i].shards,
                results[i].inserts_per_sec / base);
  }
  std::printf("(hardware: %u cores)\n\n",
              std::thread::hardware_concurrency());

  for (const RunResult& r : results) EmitJson(r, rows, inserts.size());
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const std::string inner = args.GetString("engine", "janus");
  const size_t rows = args.GetSize("rows", 100000);
  const size_t inserts = args.GetSize("inserts", 100000);
  const size_t queries = args.GetSize("queries", 200);
  const size_t producers = std::max<size_t>(1, args.GetSize("producers", 8));
  janus::bench::PrintHeader(
      "Shard scaling: insert throughput and query latency vs shard count");
  janus::Run(inner, rows, inserts, queries, producers);
  return 0;
}
