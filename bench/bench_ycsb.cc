// YCSB-style phased workload bench: drives preset (or flag-tuned) phased
// workloads — load phase then named run phases with insert/delete/query
// mixes and per-op distributions — against any registered engine through
// the closed-loop runner in src/workload/. Per phase it emits latency
// percentiles (p50/p90/p99/p99.9, linearly-interpolated type-7), throughput
// and accuracy-vs-ground-truth as JSON lines whose keys feed
// ci/check_bench_regression.py:
//
//   {"bench":"ycsb","metric":"query_p99_ms","path":"ycsb-a.run.janus",
//    "latency_ms":0.041,"queries":2031}
//   {"bench":"ycsb","metric":"qps","path":"ycsb-a.run.janus",
//    "queries_per_sec":49000.0}
//   {"bench":"ycsb","metric":"p95_err","path":"ycsb-a.run.janus",
//    "error_rel":0.062}
//
// "_ms" metrics gate as latency ceilings, "_err" metrics as accuracy
// ceilings, rate metrics as throughput floors. The path key is
// <spec>.<phase>.<engine>, independent of rows/ops — CI must invoke the
// bench with the same flags the baseline was recorded under.
//
// Flags:
//   spec=all|ycsb-a,ycsb-b,...   presets (see workload/spec.h)
//   engines=janus,sharded:janus  comma-separated registry names
//   rows=100000 ops=20000        load size / ops per run phase
//   threads=2                    closed-loop workers per phase
//   stream=0                     1 = drive through Broker/EngineDriver
//   accuracy=64                  accuracy-epilogue queries per phase
//   format=json|csv              output format
//   seed=42, shards=N, and any EngineConfig key (scan_threads, leaves, ...)

#include <cstdio>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/registry.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace janus {
namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void EmitLatency(const std::string& path, const char* metric, double ms,
                 uint64_t samples) {
  std::printf(
      "{\"bench\":\"ycsb\",\"metric\":\"%s\",\"path\":\"%s\","
      "\"latency_ms\":%.6f,\"queries\":%llu}\n",
      metric, path.c_str(), ms, static_cast<unsigned long long>(samples));
}

void EmitJson(const workload::RunReport& run) {
  for (const workload::PhaseReport& p : run.phases) {
    const std::string path = run.spec + "." + p.phase + "." + run.engine;
    if (p.query_samples > 0) {
      EmitLatency(path, "query_p50_ms", p.query_p50_ms, p.query_samples);
      EmitLatency(path, "query_p90_ms", p.query_p90_ms, p.query_samples);
      EmitLatency(path, "query_p99_ms", p.query_p99_ms, p.query_samples);
      EmitLatency(path, "query_p999_ms", p.query_p999_ms, p.query_samples);
      EmitLatency(path, "query_max_ms", p.query_max_ms, p.query_samples);
    }
    if (p.update_samples > 0) {
      EmitLatency(path, "update_p50_ms", p.update_p50_ms, p.update_samples);
      EmitLatency(path, "update_p99_ms", p.update_p99_ms, p.update_samples);
    }
    std::printf(
        "{\"bench\":\"ycsb\",\"metric\":\"qps\",\"path\":\"%s\","
        "\"queries_per_sec\":%.1f}\n",
        path.c_str(), p.queries_per_sec);
    std::printf(
        "{\"bench\":\"ycsb\",\"metric\":\"ops\",\"path\":\"%s\","
        "\"records_per_sec\":%.1f}\n",
        path.c_str(), p.ops_per_sec);
    if (p.accuracy_evaluated > 0) {
      std::printf(
          "{\"bench\":\"ycsb\",\"metric\":\"median_err\",\"path\":\"%s\","
          "\"error_rel\":%.6f}\n",
          path.c_str(), p.err_median);
      std::printf(
          "{\"bench\":\"ycsb\",\"metric\":\"p95_err\",\"path\":\"%s\","
          "\"error_rel\":%.6f}\n",
          path.c_str(), p.err_p95);
    }
    // Context line (no "metric": the regression checker skips it).
    std::printf(
        "{\"bench\":\"ycsb\",\"path\":\"%s\",\"seconds\":%.3f,"
        "\"inserts\":%llu,\"deletes\":%llu,\"delete_misses\":%llu,"
        "\"queries\":%llu,\"accuracy_evaluated\":%zu,"
        "\"ci_coverage\":%.3f}\n",
        path.c_str(), p.seconds,
        static_cast<unsigned long long>(p.ops.inserts),
        static_cast<unsigned long long>(p.ops.deletes),
        static_cast<unsigned long long>(p.ops.delete_misses),
        static_cast<unsigned long long>(p.ops.queries), p.accuracy_evaluated,
        p.ci_coverage);
  }
  std::printf(
      "{\"bench\":\"ycsb\",\"spec\":\"%s\",\"engine\":\"%s\","
      "\"load_rows\":%zu,\"load_seconds\":%.3f,\"threads\":%d,"
      "\"stream\":%s,\"final_rows\":%zu}\n",
      run.spec.c_str(), run.engine.c_str(), run.load_rows, run.load_seconds,
      run.threads, run.stream ? "true" : "false", run.final_stats.rows);
}

bool g_csv_header_printed = false;

void EmitCsv(const workload::RunReport& run) {
  if (!g_csv_header_printed) {
    std::printf(
        "spec,phase,engine,threads,stream,seconds,inserts,deletes,queries,"
        "qps,ops_per_sec,query_p50_ms,query_p90_ms,query_p99_ms,"
        "query_p999_ms,query_max_ms,update_p50_ms,update_p99_ms,"
        "median_err,p95_err,ci_coverage\n");
    g_csv_header_printed = true;
  }
  for (const workload::PhaseReport& p : run.phases) {
    std::printf(
        "%s,%s,%s,%d,%d,%.3f,%llu,%llu,%llu,%.1f,%.1f,%.6f,%.6f,%.6f,%.6f,"
        "%.6f,%.6f,%.6f,%.6f,%.6f,%.3f\n",
        run.spec.c_str(), p.phase.c_str(), run.engine.c_str(), run.threads,
        run.stream ? 1 : 0, p.seconds,
        static_cast<unsigned long long>(p.ops.inserts),
        static_cast<unsigned long long>(p.ops.deletes),
        static_cast<unsigned long long>(p.ops.queries), p.queries_per_sec,
        p.ops_per_sec, p.query_p50_ms, p.query_p90_ms, p.query_p99_ms,
        p.query_p999_ms, p.query_max_ms, p.update_p50_ms, p.update_p99_ms,
        p.err_median, p.err_p95, p.ci_coverage);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  using namespace janus;
  const ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 100000);
  const size_t ops = args.GetSize("ops", 20000);
  const std::string spec_arg = args.GetString("spec", "all");
  const std::string engines_arg =
      args.GetString("engines", args.GetString("engine", "janus"));
  const std::string format = args.GetString("format", "json");

  std::vector<std::string> specs = spec_arg == "all"
                                       ? workload::PresetNames()
                                       : SplitCsv(spec_arg);
  const std::vector<std::string> engines = SplitCsv(engines_arg);

  workload::RunnerOptions opts;
  opts.engine_cfg = EngineConfig::FromArgs(
      args, {"rows", "ops", "spec", "spec_file", "engines", "format",
             "threads", "accuracy", "stream"});
  opts.threads = args.GetInt("threads", 2);
  opts.accuracy_queries = args.GetSize("accuracy", 64);
  opts.stream = args.GetBool("stream", false);
  opts.seed = args.GetUint64("seed", 42);

  // spec_file= runs custom phased specs (comma-separated paths, parsed by
  // the strict WorkloadSpec::FromFile) instead of the built-in presets.
  const std::string spec_file_arg = args.GetString("spec_file", "");
  std::vector<workload::WorkloadSpec> file_specs;
  if (!spec_file_arg.empty()) {
    for (const std::string& path : SplitCsv(spec_file_arg)) {
      try {
        file_specs.push_back(workload::WorkloadSpec::FromFile(path));
      } catch (const std::exception& e) {
        std::printf("{\"bench\":\"ycsb\",\"error\":\"%s\"}\n", e.what());
        return 1;
      }
    }
    specs.clear();
    for (const workload::WorkloadSpec& s : file_specs) specs.push_back(s.name);
  }

  for (size_t spec_idx = 0; spec_idx < specs.size(); ++spec_idx) {
    const std::string& spec_name = specs[spec_idx];
    workload::WorkloadSpec spec;
    if (!file_specs.empty()) {
      spec = file_specs[spec_idx];
    } else {
      try {
        spec = workload::Preset(spec_name, rows, ops);
      } catch (const std::exception& e) {
        std::printf("{\"bench\":\"ycsb\",\"error\":\"%s\"}\n", e.what());
        return 1;
      }
    }
    std::fprintf(stderr, "[bench_ycsb] %s\n",
                 workload::ToString(spec).c_str());
    for (const std::string& engine : engines) {
      opts.engine_cfg.engine = engine;
      const workload::RunReport run = workload::RunPhasedWorkload(spec, opts);
      if (format == "csv") {
        EmitCsv(run);
      } else {
        EmitJson(run);
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
