// Table 3: the binary-search (BS) partitioner of Sec. 5.2 vs the dynamic-
// programming (DP) partitioner of PASS [30], on the Intel dataset: partition
// time (s) and the median relative error of the resulting static synopsis
// for CNT / SUM / AVG workloads, sweeping the partition count 16..128.
// The sample size scales with the partition count, as in Sec. 6.9. The
// static tree is the "spt" engine of the registry.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

struct Cell {
  double seconds = 0;
  double median_cnt = 0, median_sum = 0, median_avg = 0;
};

Cell RunOne(const GeneratedDataset& ds, const DefaultTemplate& tmpl,
            PartitionAlgorithm algo, int k, size_t num_queries) {
  Cell cell;
  EngineConfig cfg = bench::DefaultConfig(tmpl);
  cfg.num_leaves = k;
  cfg.focus = AggFunc::kSum;
  cfg.algorithm = algo;
  // Sample size grows with the partition count (Sec. 6.9).
  cfg.sample_rate =
      std::min(0.5, static_cast<double>(100 * k) /
                        static_cast<double>(ds.rows.size()));
  auto spt = EngineRegistry::Create("spt", cfg);
  spt->LoadInitial(ds.rows);
  spt->Initialize();
  cell.seconds = spt->Stats().partition_seconds;
  for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg}) {
    auto queries = bench::MakeWorkload(ds.rows, tmpl.predicate_column,
                                       tmpl.aggregate_column, num_queries, f,
                                       17 + static_cast<uint64_t>(k));
    const auto stats = bench::EvaluateWorkload(*spt, ds.rows, queries);
    if (f == AggFunc::kCount) cell.median_cnt = stats.median;
    if (f == AggFunc::kSum) cell.median_sum = stats.median;
    if (f == AggFunc::kAvg) cell.median_avg = stats.median;
  }
  return cell;
}

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kIntelWireless, rows, 1414);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kIntelWireless);
  std::printf("%-22s %12s %12s %12s %12s\n", "metric / partitions", "16",
              "32", "64", "128");
  Cell dp[4], bs[4];
  const int ks[4] = {16, 32, 64, 128};
  for (int i = 0; i < 4; ++i) {
    dp[i] = RunOne(ds, tmpl, PartitionAlgorithm::kDynamicProgram, ks[i],
                   num_queries);
    bs[i] = RunOne(ds, tmpl, PartitionAlgorithm::kBinarySearch, ks[i],
                   num_queries);
  }
  auto row = [&](const char* label, auto getter, const Cell* cells) {
    std::printf("%-22s %12.4f %12.4f %12.4f %12.4f\n", label,
                getter(cells[0]), getter(cells[1]), getter(cells[2]),
                getter(cells[3]));
  };
  row("Partition Time(s) DP", [](const Cell& c) { return c.seconds; }, dp);
  row("Partition Time(s) BS", [](const Cell& c) { return c.seconds; }, bs);
  row("Median RE (CNT)  DP", [](const Cell& c) { return c.median_cnt; }, dp);
  row("Median RE (CNT)  BS", [](const Cell& c) { return c.median_cnt; }, bs);
  row("Median RE (SUM)  DP", [](const Cell& c) { return c.median_sum; }, dp);
  row("Median RE (SUM)  BS", [](const Cell& c) { return c.median_sum; }, bs);
  row("Median RE (AVG)  DP", [](const Cell& c) { return c.median_avg; }, dp);
  row("Median RE (AVG)  BS", [](const Cell& c) { return c.median_avg; }, bs);
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 150000);
  const size_t queries = args.GetSize("queries", 300);
  janus::bench::PrintHeader(
      "Table 3: BS vs DP partitioning — time and accuracy vs partition "
      "count");
  janus::Run(rows, queries);
  return 0;
}
