// Table 2: median relative error (%) and average query latency (ms/query) of
// random SUM queries over the three datasets at 20% / 50% / 90% ingest
// progress, for JanusAQP, the DeepDB stand-in (mini-SPN), RS and SRS.
//
// Protocol (Sec. 6.2): start with 10% of the data as historical, add 10%
// increments; after every increment re-initialize JanusAQP and re-train the
// SPN; report at 20/50/90%.

#include <cstdio>

#include "baselines/rs.h"
#include "baselines/srs.h"
#include "baselines/spn.h"
#include "bench/common.h"
#include "core/janus.h"

namespace janus {
namespace {

using bench::ErrorStats;

struct Row {
  ErrorStats janus_stats, spn_stats, rs_stats, srs_stats;
};

void RunDataset(DatasetKind kind, size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(kind, rows, 2024);
  const DefaultTemplate tmpl = DefaultTemplateFor(kind);

  JanusOptions jopts;
  jopts.spec.agg_column = tmpl.aggregate_column;
  jopts.spec.predicate_columns = {tmpl.predicate_column};
  jopts.num_leaves = 128;
  jopts.sample_rate = 0.01;
  jopts.catchup_rate = 0.10;
  jopts.enable_triggers = false;  // Table 2 re-initializes explicitly
  JanusAqp janus_sys(jopts);

  RsOptions ropts;
  ropts.sample_rate = 0.01;
  ReservoirBaseline rs(ropts);

  SrsOptions sopts;
  sopts.num_strata = 128;
  sopts.predicate_column = tmpl.predicate_column;
  sopts.sample_rate = 0.01;
  StratifiedReservoirBaseline srs(sopts);

  std::vector<int> all_columns;
  for (int c = 0; c < ds.schema.num_columns(); ++c) all_columns.push_back(c);
  // DeepDB models the full table; the stand-in does the same.
  Spn spn(SpnOptions{}, all_columns);

  const size_t step = ds.rows.size() / 10;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(step));
  janus_sys.LoadInitial(historical);
  rs.LoadInitial(historical);
  srs.LoadInitial(historical);
  janus_sys.Initialize();
  janus_sys.RunCatchupToGoal();
  rs.Initialize();
  srs.Initialize();

  std::printf("%-5s %10s %10s %10s %10s %12s %10s %10s %10s\n",
              DatasetName(kind), "Janus(%)", "SPN(%)", "RS(%)", "SRS(%)",
              "Janus(ms)", "SPN(ms)", "RS(ms)", "SRS(ms)");
  for (int decile = 2; decile <= 9; ++decile) {
    const size_t limit = step * static_cast<size_t>(decile);
    for (size_t i = step * static_cast<size_t>(decile - 1); i < limit; ++i) {
      janus_sys.Insert(ds.rows[i]);
      rs.Insert(ds.rows[i]);
      srs.Insert(ds.rows[i]);
    }
    // Re-initialize JanusAQP and re-train the SPN after each increment.
    janus_sys.Reinitialize();
    janus_sys.RunCatchupToGoal();
    std::vector<Tuple> live(ds.rows.begin(),
                            ds.rows.begin() + static_cast<long>(limit));
    {
      Rng rng(static_cast<uint64_t>(decile));
      std::vector<size_t> idx = rng.SampleIndices(live.size(), live.size() / 10);
      std::vector<Tuple> train;
      for (size_t i : idx) train.push_back(live[i]);
      spn.Train(train, live.size());
    }
    if (decile != 2 && decile != 5 && decile != 9) continue;

    auto queries = bench::MakeWorkload(live, tmpl.predicate_column,
                                       tmpl.aggregate_column, num_queries,
                                       AggFunc::kSum, 7);
    const ErrorStats je = bench::EvaluateWorkload(janus_sys, live, queries);
    const ErrorStats se = bench::EvaluateWorkload(spn, live, queries);
    const ErrorStats re = bench::EvaluateWorkload(rs, live, queries);
    const ErrorStats ce = bench::EvaluateWorkload(srs, live, queries);
    std::printf("0.%d   %10.2f %10.2f %10.2f %10.2f %12.3f %10.3f %10.3f "
                "%10.3f\n",
                decile, je.median * 100, se.median * 100, re.median * 100,
                ce.median * 100, je.mean_latency_ms, se.mean_latency_ms,
                re.mean_latency_ms, ce.mean_latency_ms);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const size_t rows = janus::bench::FlagValue(argc, argv, "--rows", 80000);
  const size_t queries =
      janus::bench::FlagValue(argc, argv, "--queries", 400);
  janus::bench::PrintHeader(
      "Table 2: median relative error (%) and avg latency (ms/query), "
      "2000-query SUM workloads");
  for (auto kind :
       {janus::DatasetKind::kIntelWireless, janus::DatasetKind::kNycTaxi,
        janus::DatasetKind::kNasdaqEtf}) {
    janus::RunDataset(kind, rows, queries);
  }
  return 0;
}
