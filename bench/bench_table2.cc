// Table 2: median relative error (%) and average query latency (ms/query) of
// random SUM queries over the three datasets at 20% / 50% / 90% ingest
// progress, for JanusAQP, the DeepDB stand-in (mini-SPN), RS and SRS — all
// driven through the AqpEngine facade.
//
// Protocol (Sec. 6.2): start with 10% of the data as historical, add 10%
// increments; after every increment re-initialize JanusAQP and re-train the
// SPN (both are Reinitialize() on the facade); report at 20/50/90%.

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

using bench::ErrorStats;

void RunDataset(DatasetKind kind, size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(kind, rows, 2024);
  const DefaultTemplate tmpl = DefaultTemplateFor(kind);

  EngineConfig cfg = bench::DefaultConfig(tmpl, ds.schema);
  // DeepDB models the full table; the stand-in does the same.
  for (int c = 0; c < ds.schema.num_columns(); ++c) {
    cfg.model_columns.push_back(c);
  }

  auto janus_sys = EngineRegistry::Create("janus", cfg);
  auto spn = EngineRegistry::Create("spn", cfg);
  auto rs = EngineRegistry::Create("rs", cfg);
  auto srs = EngineRegistry::Create("srs", cfg);
  AqpEngine* engines[] = {janus_sys.get(), spn.get(), rs.get(), srs.get()};

  const size_t step = ds.rows.size() / 10;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(step));
  for (AqpEngine* e : engines) {
    e->LoadInitial(historical);
    e->Initialize();
  }
  janus_sys->RunCatchupToGoal();

  std::printf("%-5s %10s %10s %10s %10s %12s %10s %10s %10s\n",
              DatasetName(kind), "Janus(%)", "SPN(%)", "RS(%)", "SRS(%)",
              "Janus(ms)", "SPN(ms)", "RS(ms)", "SRS(ms)");
  for (int decile = 2; decile <= 9; ++decile) {
    const size_t limit = step * static_cast<size_t>(decile);
    for (size_t i = step * static_cast<size_t>(decile - 1); i < limit; ++i) {
      for (AqpEngine* e : engines) e->Insert(ds.rows[i]);
    }
    // Re-initialize JanusAQP and re-train the SPN after each increment.
    janus_sys->Reinitialize();
    janus_sys->RunCatchupToGoal();
    spn->Reinitialize();
    if (decile != 2 && decile != 5 && decile != 9) continue;

    std::vector<Tuple> live(ds.rows.begin(),
                            ds.rows.begin() + static_cast<long>(limit));
    auto queries = bench::MakeWorkload(live, tmpl.predicate_column,
                                       tmpl.aggregate_column, num_queries,
                                       AggFunc::kSum, 7);
    const ErrorStats je = bench::EvaluateWorkload(*janus_sys, live, queries);
    const ErrorStats se = bench::EvaluateWorkload(*spn, live, queries);
    const ErrorStats re = bench::EvaluateWorkload(*rs, live, queries);
    const ErrorStats ce = bench::EvaluateWorkload(*srs, live, queries);
    std::printf("0.%d   %10.2f %10.2f %10.2f %10.2f %12.3f %10.3f %10.3f "
                "%10.3f\n",
                decile, je.median * 100, se.median * 100, re.median * 100,
                ce.median * 100, je.mean_latency_ms, se.mean_latency_ms,
                re.mean_latency_ms, ce.mean_latency_ms);
  }

  // Memory footprint at 90% ingest: columnar archive vs synopsis state.
  std::printf("%-5s %-8s %14s %14s\n", DatasetName(kind), "memory",
              "archive(MB)", "synopsis(MB)");
  for (AqpEngine* e : engines) {
    const EngineStats s = e->Stats();
    std::printf("%-5s %-8s %14.2f %14.2f\n", DatasetName(kind),
                s.engine.c_str(),
                static_cast<double>(s.archive_bytes) / (1024.0 * 1024.0),
                static_cast<double>(s.synopsis_bytes) / (1024.0 * 1024.0));
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 80000);
  const size_t queries = args.GetSize("queries", 400);
  janus::bench::PrintHeader(
      "Table 2: median relative error (%) and avg latency (ms/query), "
      "2000-query SUM workloads");
  for (auto kind :
       {janus::DatasetKind::kIntelWireless, janus::DatasetKind::kNycTaxi,
        janus::DatasetKind::kNasdaqEtf}) {
    janus::RunDataset(kind, rows, queries);
  }
  return 0;
}
