// Morsel-parallel scan microbench: serial kernels (data/scan.h) vs the
// parallel execution layer (data/parallel_scan.h) on the archival patterns
// behind the paper's slow paths — full-scan aggregation, selective counting,
// threshold counting (rejection sampling) and exact DPT initialization —
// across a sweep of worker counts. Emits one JSON line per (metric, threads,
// rows) so the CI perf-regression job can track throughput:
//
//   {"bench":"parallel_scan","metric":"full_scan_aggregate","threads":8,
//    "rows":1000000,"seconds":0.0012,"rows_per_sec":8.3e8,
//    "speedup_vs_serial":3.4,"checksum":...}
//
// Flags: rows=1000000  reps=3  threads=1,2,4,8  seed=2024

#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "api/config.h"
#include "core/dpt.h"
#include "core/spt.h"
#include "data/generators.h"
#include "data/parallel_scan.h"
#include "data/scan.h"
#include "data/simd.h"
#include "data/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace janus {
namespace {

struct Sample {
  double seconds = 0;
  double checksum = 0;
};

template <typename Fn>
Sample Best(int reps, Fn&& fn) {
  Sample best;
  best.seconds = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    const double checksum = fn();
    const double secs = timer.ElapsedSeconds();
    if (secs < best.seconds) best = {secs, checksum};
  }
  return best;
}

void Emit(const char* metric, int threads, size_t rows, const Sample& s,
          double serial_seconds) {
  std::printf(
      "{\"bench\":\"parallel_scan\",\"metric\":\"%s\",\"threads\":%d,"
      "\"rows\":%zu,\"seconds\":%.6f,\"rows_per_sec\":%.3e,"
      "\"speedup_vs_serial\":%.3f,\"checksum\":%.6e}\n",
      metric, threads, rows, s.seconds,
      s.seconds > 0 ? static_cast<double>(rows) / s.seconds : 0.0,
      s.seconds > 0 ? serial_seconds / s.seconds : 0.0, s.checksum);
}

bool RunAt(size_t rows, int reps, uint64_t seed,
           const std::vector<int>& thread_counts) {
  const GeneratedDataset ds = GenerateDataset(DatasetKind::kNycTaxi, rows,
                                              seed);
  const DefaultTemplate tmpl = DefaultTemplateFor(ds.kind);
  const std::vector<int> pred = {tmpl.predicate_column};
  const int agg = tmpl.aggregate_column;

  DynamicTable table(ds.schema);
  for (const Tuple& r : ds.rows) table.Insert(r);
  const ColumnStore& store = table.store();

  const Rectangle everything = Rectangle::Infinite(1);
  const auto [lo, hi] = scan::ColumnMinMax(store, pred[0], {});
  const double mid = lo + 0.5 * (hi - lo);
  const double half = 0.005 * (hi - lo);
  const Rectangle window({mid - half}, {mid + half});
  const size_t threshold = rows / 20;

  SptOptions sopts;
  sopts.spec.agg_column = agg;
  sopts.spec.predicate_columns = pred;
  sopts.num_leaves = 128;
  sopts.seed = seed;

  // Serial baselines (the data/scan.h kernels, no pool).
  const Sample serial_agg = Best(reps, [&] {
    return scan::AggregateInRect(store, AggFunc::kSum, agg, pred, everything)
        .value_or(0);
  });
  const Sample serial_count = Best(reps, [&] {
    return static_cast<double>(scan::CountInRect(store, pred, window));
  });
  const Sample serial_atleast = Best(reps, [&] {
    return static_cast<double>(
        scan::CountInRectAtLeast(store, pred, everything, threshold));
  });
  const Sample serial_init = Best(reps, [&] {
    SptBuildResult b = BuildSpt(store, sopts);
    return b.synopsis->NodeCountEstimate(0);
  });
  Emit("full_scan_aggregate", 1, rows, serial_agg, serial_agg.seconds);
  Emit("selective_count", 1, rows, serial_count, serial_count.seconds);
  Emit("count_at_least", 1, rows, serial_atleast, serial_atleast.seconds);
  Emit("dpt_init_exact", 1, rows, serial_init, serial_init.seconds);

  bool ok = true;
  for (int threads : thread_counts) {
    if (threads <= 1) continue;
    ThreadPool pool(static_cast<size_t>(threads));
    scan::ExecContext ctx;
    ctx.pool = &pool;
    ctx.max_workers = static_cast<size_t>(threads);

    const Sample par_agg = Best(reps, [&] {
      return scan::AggregateInRect(store, AggFunc::kSum, agg, pred,
                                   everything, ctx)
          .value_or(0);
    });
    Emit("full_scan_aggregate", threads, rows, par_agg, serial_agg.seconds);

    const Sample par_count = Best(reps, [&] {
      return static_cast<double>(scan::CountInRect(store, pred, window, ctx));
    });
    Emit("selective_count", threads, rows, par_count, serial_count.seconds);

    const Sample par_atleast = Best(reps, [&] {
      return static_cast<double>(
          scan::CountInRectAtLeast(store, pred, everything, threshold, ctx));
    });
    Emit("count_at_least", threads, rows, par_atleast,
         serial_atleast.seconds);

    SptOptions popts = sopts;
    popts.exec = ctx;
    const Sample par_init = Best(reps, [&] {
      SptBuildResult b = BuildSpt(store, popts);
      return b.synopsis->NodeCountEstimate(0);
    });
    Emit("dpt_init_exact", threads, rows, par_init, serial_init.seconds);

    // Correctness tripwire: counts are bit-identical, aggregates 1e-9.
    if (par_count.checksum != serial_count.checksum ||
        par_atleast.checksum != serial_atleast.checksum) {
      std::printf("{\"bench\":\"parallel_scan\",\"error\":\"count mismatch\","
                  "\"threads\":%d}\n",
                  threads);
      ok = false;
    }
    const double rel =
        serial_agg.checksum != 0
            ? (par_agg.checksum - serial_agg.checksum) / serial_agg.checksum
            : 0;
    if (rel > 1e-9 || rel < -1e-9) {
      std::printf("{\"bench\":\"parallel_scan\",\"error\":\"aggregate "
                  "mismatch\",\"threads\":%d,\"rel\":%.3e}\n",
                  threads, rel);
      ok = false;
    }
  }
  return ok;
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const std::vector<int> rows_list = args.GetIntList("rows", {1000000});
  const int reps = args.GetInt("reps", 3);
  const uint64_t seed = args.GetUint64("seed", 2024);
  const std::vector<int> threads = args.GetIntList("threads", {1, 2, 4, 8});
  // Environment line (no "metric" field, so the regression checker skips
  // it): which SIMD kernel table this run used — essential context when
  // comparing numbers across machines or JANUS_SIMD settings.
  std::printf("{\"bench\":\"parallel_scan\",\"simd\":\"%s\"}\n",
              janus::scan::simd::Active().name);
  bool ok = true;
  for (int rows : rows_list) {
    if (rows <= 0) continue;
    ok = janus::RunAt(static_cast<size_t>(rows), reps, seed, threads) && ok;
  }
  // Nonzero on any serial/parallel mismatch so CI fails even though the
  // regression checker skips error lines.
  return ok ? 0 : 1;
}
