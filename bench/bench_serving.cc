// Serving-tier bench: measures the networked multi-tenant path end to end —
// an in-process AqpServer on an ephemeral loopback port, closed-loop wire
// clients, and a background ingest client that keeps the engine's update
// path busy while queries are served.
//
// Two sections, emitted as JSON lines for ci/check_bench_regression.py:
//
// 1. Request batching: the same query load (clients= concurrent
//    connections, ops= queries each) runs once with batch_window_us=0 and
//    once with a coalescing window. Sharded engines quiesce each shard once
//    per engine call, so the windowed run amortizes that cost over every
//    query in the batch:
//      {"bench":"serving","metric":"qps_nobatch","path":"sharded:janus.8c",
//       "queries_per_sec":...}
//      {"bench":"serving","metric":"qps_batch","path":"sharded:janus.8c",
//       "queries_per_sec":...}
//      {"bench":"serving","metric":"batch_speedup","path":"...","ratio":...}
//    batch_speedup gates as a floor: batching must stay a win.
//
// 2. Admission control: a compliant tenant paced under tenant_rate shares
//    the server with greedy tenants hammering as fast as the loop allows.
//    The compliant tenant's acceptance share gates as a floor near 1.0 —
//    greedy traffic burns its own token bucket, not the compliant one's:
//      {"bench":"serving","metric":"compliant_share","path":"rate",
//       "ratio":...}
//
// Flags:
//   engine=sharded:janus   registry backend fronted by the server
//   rows=40000             archive rows loaded before serving
//   clients=8 ops=400      concurrent query connections / queries each
//   window=200             coalescing window (us) for the batch run
//   ingest=2 ingest_batch=256  background ingest connections and the rows
//                          per insert frame (0 connections disables ingest)
//   rate=60 rate_seconds=2 admission-control section knobs
//   spec_file=PATH         drive client op mixes from a phased spec file
//                          (WorkloadSpec::FromFile; phase 1's mix applies)
//   plus any EngineConfig or ServerOptions key (shards, leaves, ...)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/config.h"
#include "api/error.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/workload.h"
#include "net/client.h"
#include "net/server.h"
#include "util/rng.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace janus {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-run aggregate over all client threads.
struct LoadResult {
  double seconds = 0;
  uint64_t answered = 0;
  uint64_t rejected = 0;
  uint64_t updates = 0;
  workload::LatencyReservoir latencies;
  Rng merge_rng{12345};
};

/// Op mix a client thread draws from (defaults to query-only; a spec file
/// overrides it).
struct ClientMix {
  double insert = 0;
  double del = 0;
};

/// Closed-loop query clients (one connection, one tenant each) against a
/// running server, with an optional background ingest connection issuing
/// insert batches for the whole run.
LoadResult RunClients(uint16_t port, int clients, size_t ops_per_client,
                      const std::vector<AggQuery>& workload,
                      const ClientMix& mix, int ingest_threads,
                      size_t ingest_batch, std::atomic<uint64_t>* next_id) {
  LoadResult result;
  std::atomic<bool> stop_ingest{false};
  std::vector<std::thread> ingest;
  for (int g = 0; g < ingest_threads; ++g) {
    ingest.emplace_back([port, next_id, ingest_batch, g, &stop_ingest] {
      net::AqpClient client("127.0.0.1", port,
                            /*tenant_id=*/1000 + static_cast<uint64_t>(g));
      std::vector<Tuple> batch(ingest_batch);
      Rng rng(991 + static_cast<uint64_t>(g));
      while (!stop_ingest.load(std::memory_order_relaxed)) {
        for (Tuple& t : batch) {
          t.id = next_id->fetch_add(1, std::memory_order_relaxed);
          t[0] = rng.NextDouble();
          t[1] = 10.0 + rng.NextDouble();
        }
        client.Insert(batch);
      }
    });
  }

  std::vector<workload::LatencyReservoir> lats(
      static_cast<size_t>(clients));
  std::vector<uint64_t> answered(static_cast<size_t>(clients), 0);
  std::vector<uint64_t> rejected(static_cast<size_t>(clients), 0);
  std::vector<uint64_t> updates(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const size_t idx = static_cast<size_t>(c);
      net::AqpClient client("127.0.0.1", port,
                            /*tenant_id=*/static_cast<uint64_t>(c));
      Rng lat_rng(7 + static_cast<uint64_t>(c));
      std::mt19937_64 op_rng(static_cast<uint64_t>(c) * 7919 + 17);
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      for (size_t i = 0; i < ops_per_client; ++i) {
        const double draw = unit(op_rng);
        if (draw < mix.insert) {
          Tuple t;
          t.id = next_id->fetch_add(1, std::memory_order_relaxed);
          t[0] = unit(op_rng);
          t[1] = 10.0 + unit(op_rng);
          client.Insert({t});
          ++updates[idx];
          continue;
        }
        if (draw < mix.insert + mix.del) {
          client.Delete({op_rng() % next_id->load(std::memory_order_relaxed)});
          ++updates[idx];
          continue;
        }
        const AggQuery& q =
            workload[(idx * ops_per_client + i) % workload.size()];
        const auto issued = Clock::now();
        const QueryResult res = client.Query(q);
        if (res.ok) {
          lats[idx].Add(SecondsSince(issued) * 1e3, &lat_rng);
          ++answered[idx];
        } else {
          ++rejected[idx];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = SecondsSince(start);
  stop_ingest.store(true);
  for (std::thread& t : ingest) t.join();
  for (int c = 0; c < clients; ++c) {
    const size_t idx = static_cast<size_t>(c);
    result.answered += answered[idx];
    result.rejected += rejected[idx];
    result.updates += updates[idx];
    result.latencies.Merge(lats[idx], &result.merge_rng);
  }
  return result;
}

void EmitRate(const std::string& path, const char* metric, double value) {
  std::printf(
      "{\"bench\":\"serving\",\"metric\":\"%s\",\"path\":\"%s\","
      "\"queries_per_sec\":%.1f}\n",
      metric, path.c_str(), value);
}

void EmitLatency(const std::string& path, const char* metric, double ms) {
  std::printf(
      "{\"bench\":\"serving\",\"metric\":\"%s\",\"path\":\"%s\","
      "\"latency_ms\":%.6f}\n",
      metric, path.c_str(), ms);
}

void EmitRatio(const std::string& path, const char* metric, double ratio) {
  std::printf(
      "{\"bench\":\"serving\",\"metric\":\"%s\",\"path\":\"%s\","
      "\"ratio\":%.4f}\n",
      metric, path.c_str(), ratio);
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  using namespace janus;
  const ArgMap args(argc, argv);

  std::vector<std::string> extra = {
      "rows", "clients", "ops",          "window",   "ingest",
      "ingest_batch",    "rate", "rate_seconds", "spec_file"};
  for (const std::string& key : net::ServerOptions::KeyNames()) {
    extra.push_back(key);
  }
  EngineConfig cfg;
  net::ServerOptions base_opts;
  try {
    cfg = EngineConfig::FromArgs(args, extra);
    base_opts = net::ServerOptions::FromArgs(args);
  } catch (const std::exception& e) {
    std::printf("{\"bench\":\"serving\",\"error\":\"%s\"}\n", e.what());
    return 1;
  }
  if (!args.Has("engine")) cfg.engine = "sharded:janus";

  size_t rows = args.GetSize("rows", 40000);
  const int clients = args.GetInt("clients", 8);
  size_t ops = args.GetSize("ops", 400);
  const int64_t window_us =
      static_cast<int64_t>(args.GetUint64("window", 200));
  const int ingest_threads = args.GetInt("ingest", 2);
  const size_t ingest_batch = args.GetSize("ingest_batch", 256);
  const double rate = args.GetDouble("rate", 60.0);
  const double rate_seconds = args.GetDouble("rate_seconds", 2.0);

  ClientMix mix;
  const std::string spec_file = args.GetString("spec_file", "");
  std::string mix_name = "query-only";
  if (!spec_file.empty()) {
    try {
      const workload::WorkloadSpec spec =
          workload::WorkloadSpec::FromFile(spec_file);
      rows = spec.load_rows;
      const workload::PhaseSpec& phase = spec.phases.front();
      if (phase.ops > 0) ops = phase.ops / static_cast<size_t>(clients);
      mix.insert = phase.mix.insert;
      mix.del = phase.mix.del;
      mix_name = spec.name;
    } catch (const std::exception& e) {
      std::printf("{\"bench\":\"serving\",\"error\":\"%s\"}\n", e.what());
      return 1;
    }
  }

  const auto ds = GenerateUniform(rows, 1, cfg.seed);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions wl_opts;
  wl_opts.num_queries = 512;
  wl_opts.seed = cfg.seed + 1;
  const std::vector<AggQuery> workload = gen.Generate(ds.rows, wl_opts);
  if (workload.empty()) {
    std::printf(
        "{\"bench\":\"serving\",\"error\":\"workload generation produced 0 "
        "queries\"}\n");
    return 1;
  }

  const std::string path =
      cfg.engine + "." + std::to_string(clients) + "c." + mix_name;

  // --- section 1: request batching ------------------------------------------
  double qps_nobatch = 0;
  double qps_batch = 0;
  for (const bool batched : {false, true}) {
    auto engine = EngineRegistry::Create(cfg);
    engine->LoadInitial(ds.rows);
    engine->Initialize();
    std::atomic<uint64_t> next_id{static_cast<uint64_t>(rows)};

    net::ServerOptions opts = base_opts;
    opts.listen_port = 0;
    opts.batch_window_us = batched ? window_us : 0;
    // Closed-loop clients can have at most `clients` queries pending, so a
    // full batch is exactly one per client: the dispatcher fires the moment
    // every in-flight query has arrived and the window only bounds
    // stragglers, instead of running out in dead time on every batch.
    opts.batch_max = static_cast<size_t>(clients);
    opts.tenant_rate = 0;  // admission control measured separately
    net::AqpServer server(engine.get(), opts);
    server.Start();

    const LoadResult run =
        RunClients(server.port(), clients, ops, workload, mix, ingest_threads,
                   ingest_batch, &next_id);
    server.Stop();

    const char* mode = batched ? "batch" : "nobatch";
    const double qps =
        run.seconds > 0 ? static_cast<double>(run.answered) / run.seconds : 0;
    (batched ? qps_batch : qps_nobatch) = qps;
    EmitRate(path, batched ? "qps_batch" : "qps_nobatch", qps);
    EmitLatency(path, batched ? "query_p50_batch_ms" : "query_p50_nobatch_ms",
                run.latencies.PercentileMs(50));
    EmitLatency(path, batched ? "query_p99_batch_ms" : "query_p99_nobatch_ms",
                run.latencies.PercentileMs(99));
    const net::ServingStats srv = server.stats();
    std::printf(
        "{\"bench\":\"serving\",\"path\":\"%s\",\"mode\":\"%s\","
        "\"seconds\":%.3f,\"answered\":%llu,\"updates\":%llu,"
        "\"server_batches\":%llu,\"server_batched_queries\":%llu,"
        "\"server_inserts\":%llu}\n",
        path.c_str(), mode, run.seconds,
        static_cast<unsigned long long>(run.answered),
        static_cast<unsigned long long>(run.updates),
        static_cast<unsigned long long>(srv.batches),
        static_cast<unsigned long long>(srv.batched_queries),
        static_cast<unsigned long long>(srv.inserts));
    std::fflush(stdout);
  }
  if (qps_nobatch > 0) {
    EmitRatio(path, "batch_speedup", qps_batch / qps_nobatch);
  }

  // --- section 2: per-tenant admission control ------------------------------
  {
    EngineConfig rate_cfg = cfg;
    auto engine = EngineRegistry::Create(rate_cfg);
    engine->LoadInitial(ds.rows);
    engine->Initialize();

    net::ServerOptions opts = base_opts;
    opts.listen_port = 0;
    opts.batch_window_us = 0;
    opts.tenant_rate = rate;
    opts.tenant_burst = rate / 4;
    net::AqpServer server(engine.get(), opts);
    server.Start();
    const uint16_t port = server.port();

    // The compliant tenant paces itself to half the admitted rate; two
    // greedy tenants issue as fast as their closed loops allow.
    std::atomic<uint64_t> compliant_ok{0}, compliant_total{0};
    std::atomic<uint64_t> greedy_ok{0}, greedy_rejected{0};
    std::atomic<bool> stop{false};
    std::thread compliant([&] {
      net::AqpClient client("127.0.0.1", port, /*tenant_id=*/1);
      const auto pace =
          std::chrono::microseconds(static_cast<int64_t>(2e6 / rate));
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryResult res = client.Query(workload[i++ % workload.size()]);
        ++compliant_total;
        if (res.ok) ++compliant_ok;
        std::this_thread::sleep_for(pace);
      }
    });
    std::vector<std::thread> greedy;
    for (int g = 0; g < 2; ++g) {
      greedy.emplace_back([&, g] {
        net::AqpClient client("127.0.0.1", port,
                              /*tenant_id=*/static_cast<uint64_t>(2 + g));
        size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const QueryResult res =
              client.Query(workload[i++ % workload.size()]);
          if (res.ok) {
            ++greedy_ok;
          } else if (res.error_code ==
                     static_cast<uint32_t>(
                         ApiErrorCode::kRejectedRateLimit)) {
            ++greedy_rejected;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(rate_seconds));
    stop.store(true);
    compliant.join();
    for (std::thread& t : greedy) t.join();
    server.Stop();

    const double share =
        compliant_total.load() > 0
            ? static_cast<double>(compliant_ok.load()) /
                  static_cast<double>(compliant_total.load())
            : 0;
    EmitRatio("rate", "compliant_share", share);
    const net::ServingStats srv = server.stats();
    std::printf(
        "{\"bench\":\"serving\",\"path\":\"rate\",\"tenant_rate\":%.1f,"
        "\"compliant_ok\":%llu,\"compliant_total\":%llu,"
        "\"greedy_ok\":%llu,\"greedy_rejected\":%llu,"
        "\"server_rejected_rate_limit\":%llu}\n",
        rate, static_cast<unsigned long long>(compliant_ok.load()),
        static_cast<unsigned long long>(compliant_total.load()),
        static_cast<unsigned long long>(greedy_ok.load()),
        static_cast<unsigned long long>(greedy_rejected.load()),
        static_cast<unsigned long long>(srv.rejected_rate_limit));
  }
  return 0;
}
