// Ablation (Sec. 5.5): the k / m tradeoff. Sweeps the leaf count k and the
// sampling rate alpha, reporting median error, P95, query latency and
// synopsis footprint. The paper's rule of thumb k ~ 0.5% of m shows up as
// the knee of this sweep.

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 2525);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kNycTaxi);
  auto queries = bench::MakeWorkload(ds.rows, tmpl.predicate_column,
                                     tmpl.aggregate_column, num_queries,
                                     AggFunc::kSum, 71);
  std::printf("%-8s %-8s %10s %10s %14s %14s\n", "k", "alpha", "median",
              "P95", "latency(ms)", "samples");
  for (double alpha : {0.005, 0.01, 0.02}) {
    for (int k : {16, 64, 128, 256, 512}) {
      EngineConfig cfg = bench::DefaultConfig(tmpl);
      cfg.num_leaves = k;
      cfg.sample_rate = alpha;
      auto system = EngineRegistry::Create("janus", cfg);
      system->LoadInitial(ds.rows);
      system->Initialize();
      system->RunCatchupToGoal();
      const auto stats = bench::EvaluateWorkload(*system, ds.rows, queries);
      std::printf("%-8d %-8.3f %10.4f %10.4f %14.4f %14zu\n", k, alpha,
                  stats.median, stats.p95, stats.mean_latency_ms,
                  system->Stats().sample_size);
    }
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 80000);
  const size_t queries = args.GetSize("queries", 300);
  janus::bench::PrintHeader(
      "Ablation (Sec. 5.5): leaf count / sampling rate sweep");
  janus::Run(rows, queries);
  return 0;
}
