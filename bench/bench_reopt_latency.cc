// Re-optimization latency bench: drives an open-loop query stream against a
// "janus" engine while an update stream fires re-partitioning triggers, once
// with reopt_mode=blocking (the optimizer runs inline under the exclusive
// room) and once with reopt_mode=background (the three-stage pipeline: the
// maintenance thread builds off to the side and the exclusive section shrinks
// to a pointer swap + bounded delta-tail replay). Emits one JSON line per
// (metric, mode) so the CI perf-regression job can gate query latency:
//
//   {"bench":"reopt_latency","metric":"query_p99_ms","mode":"background",
//    "rows":1000000,"latency_ms":0.021,"queries":183220}
//
// Latency metrics carry "latency_ms" (lower is better — the checker gates
// them as ceilings, unlike the throughput floors). last_blocking_ms is the
// engine's own measurement of the exclusive step of its last re-opt: the
// whole optimize+adopt in blocking mode, swap+tail in background mode.
//
// The run ends with a deterministic core-level equivalence check (the
// acceptance contract of the pipeline): a background Begin/Build/Finish with
// inserts, deletes and reservoir resamples interleaved into the build window
// must answer bit-identically (counts) / 1e-12 (FP aggregates) to a blocking
// re-optimization at the same stream point. Any mismatch prints an "error"
// line and the process exits nonzero.
//
// "Steady state" is measured under the identical update storm on a twin
// engine with triggers disabled, so steady-vs-contended isolates the cost of
// the re-optimizations themselves, not update/query room contention.
//
// Flags: rows=1000000  seconds=2.0  update_rate=100000  qps=2000  seed=2024

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/config.h"
#include "api/engine.h"
#include "api/registry.h"
#include "core/janus.h"
#include "data/generators.h"
#include "util/rng.h"
#include "util/timer.h"

namespace janus {
namespace {

struct LatencyStats {
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  size_t queries = 0;
};

LatencyStats Summarize(std::vector<double>& ms) {
  LatencyStats s;
  s.queries = ms.size();
  if (ms.empty()) return s;
  std::sort(ms.begin(), ms.end());
  auto at = [&](double q) {
    return ms[static_cast<size_t>(q * static_cast<double>(ms.size() - 1))];
  };
  s.p50_ms = at(0.50);
  s.p99_ms = at(0.99);
  s.max_ms = ms.back();
  return s;
}

/// One query of the open-loop stream: a deterministic rotation of
/// COUNT/SUM/AVG windows (no RNG in the hot loop, so both modes issue the
/// identical query stream).
void IssueQuery(const AqpEngine& engine, size_t i) {
  const double lo = 0.02 + 0.43 * static_cast<double>((i * 37) % 101) / 101.0;
  AggQuery q;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {lo + 0.5});
  q.func = (i % 3 == 0)   ? AggFunc::kCount
           : (i % 3 == 1) ? AggFunc::kSum
                          : AggFunc::kAvg;
  (void)engine.Query(q);
}

struct PhaseResult {
  LatencyStats lat;
  uint64_t inserts = 0;
};

/// One time-boxed update-storm phase: an updater thread streams inserts at a
/// fixed rate for `seconds` of wall clock while this thread issues an
/// open-loop query stream at `qps`. Latency is measured from each query's
/// *scheduled* time, so a stall that dams up the stream charges every query
/// it delayed (no coordinated omission — a closed loop would silently issue
/// fewer queries across a stall and under-count it). Identical schedules on
/// both sides give the steady and contended phases the same query count and
/// the same exposure to the amortized costs every insert stream carries
/// (e.g. the sample index's scapegoat rebuilds), so their percentile delta
/// isolates the re-optimizations.
PhaseResult UpdateStormPhase(AqpEngine* engine, double seconds, double rate,
                             double qps, uint64_t id_base, uint64_t seed) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inserted{0};
  std::thread updater([&] {
    Rng rng(seed);
    uint64_t u = 0;
    Timer t;
    while (!stop.load(std::memory_order_acquire)) {
      for (int b = 0; b < 256 && !stop.load(std::memory_order_acquire); ++b) {
        Tuple tup;
        tup.id = id_base + u;
        tup[0] = rng.NextDouble();
        tup[1] = rng.Normal(10, 3);
        engine->Insert(tup);
        ++u;
      }
      // Pace to the schedule; after falling behind (a blocking rebuild on
      // this thread), catch up burst-wise.
      const double ahead =
          static_cast<double>(u) / rate - t.ElapsedSeconds();
      if (ahead > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(ahead, 0.01)));
      }
    }
    inserted.store(u, std::memory_order_release);
  });
  const size_t total = static_cast<size_t>(seconds * qps);
  std::vector<double> ms;
  ms.reserve(total);
  Timer t;
  for (size_t i = 0; i < total; ++i) {
    const double sched = static_cast<double>(i) / qps;
    const double now = t.ElapsedSeconds();
    if (now < sched) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sched - now));
    }
    IssueQuery(*engine, i);
    ms.push_back((t.ElapsedSeconds() - sched) * 1e3);
  }
  stop.store(true, std::memory_order_release);
  updater.join();
  PhaseResult r;
  r.lat = Summarize(ms);
  r.inserts = inserted.load(std::memory_order_acquire);
  return r;
}

struct ModeRun {
  PhaseResult steady;     ///< same update pressure, triggers disabled
  PhaseResult contended;  ///< triggers firing re-optimizations
  EngineStats stats;
};

ModeRun RunMode(const std::string& mode, const GeneratedDataset& ds,
                double phase_seconds, double update_rate, double qps,
                uint64_t seed) {
  EngineConfig cfg;
  cfg.engine = "janus";
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 64;
  cfg.sample_rate = 0.02;
  cfg.catchup_rate = 0.10;
  // Every trigger evaluation reports starvation, so each interval crossing
  // is a full re-optimization — the worst case the pipeline is built for.
  cfg.enable_triggers = true;
  cfg.trigger_check_interval = 4096;
  cfg.starvation_factor = 1e9;
  cfg.reopt_mode = mode;
  cfg.seed = seed;

  auto build = [&](const EngineConfig& c) {
    auto engine = EngineRegistry::Create(c);
    engine->LoadInitial(ds.rows);
    engine->Initialize();
    engine->RunCatchupToGoal();
    return engine;
  };

  ModeRun run;

  // Steady state: the identical update storm on a twin engine with triggers
  // disabled — query latency under pure update/query room contention, no
  // re-optimizations. This is the baseline "across a re-opt" compares to.
  {
    EngineConfig steady_cfg = cfg;
    steady_cfg.enable_triggers = false;
    auto engine = build(steady_cfg);
    run.steady = UpdateStormPhase(engine.get(), phase_seconds, update_rate,
                                  qps, 10000000, seed + 17);
  }

  // Contended: same storm, triggers firing a full re-optimization at every
  // check-interval crossing (~updates/interval of them).
  auto engine = build(cfg);
  run.contended = UpdateStormPhase(engine.get(), phase_seconds, update_rate,
                                   qps, 10000000, seed + 17);

  // Background mode: let the maintenance thread drain any still-queued
  // request so last_blocking_seconds describes a completed adoption.
  uint64_t adopted = engine->Stats().background_reopts;
  for (int spins = 0; spins < 100; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const uint64_t now =
        engine->Stats().background_reopts + engine->Stats().background_discards;
    if (now == adopted && spins > 10) break;
    adopted = now;
  }
  run.stats = engine->Stats();
  return run;
}

void Emit(const char* metric, const std::string& mode, size_t rows,
          double latency_ms, size_t queries) {
  std::printf(
      "{\"bench\":\"reopt_latency\",\"metric\":\"%s\",\"mode\":\"%s\","
      "\"rows\":%zu,\"latency_ms\":%.6f,\"queries\":%zu}\n",
      metric, mode.c_str(), rows, latency_ms, queries);
}

void EmitMode(const std::string& mode, size_t rows, const ModeRun& r) {
  Emit("steady_p50_ms", mode, rows, r.steady.lat.p50_ms, r.steady.lat.queries);
  Emit("steady_p99_ms", mode, rows, r.steady.lat.p99_ms, r.steady.lat.queries);
  Emit("query_p50_ms", mode, rows, r.contended.lat.p50_ms,
       r.contended.lat.queries);
  Emit("query_p99_ms", mode, rows, r.contended.lat.p99_ms,
       r.contended.lat.queries);
  Emit("query_max_ms", mode, rows, r.contended.lat.max_ms,
       r.contended.lat.queries);
  Emit("last_blocking_ms", mode, rows, r.stats.last_blocking_seconds * 1e3,
       r.contended.lat.queries);
  // Context line (no "metric": the regression checker skips it).
  std::printf(
      "{\"bench\":\"reopt_latency\",\"mode\":\"%s\",\"rows\":%zu,"
      "\"repartitions\":%llu,\"background_reopts\":%llu,"
      "\"delta_ops_replayed\":%llu,\"last_reopt_ms\":%.3f,"
      "\"steady_inserts\":%llu,\"contended_inserts\":%llu}\n",
      mode.c_str(), rows,
      static_cast<unsigned long long>(r.stats.repartitions),
      static_cast<unsigned long long>(r.stats.background_reopts),
      static_cast<unsigned long long>(r.stats.delta_ops_replayed),
      r.stats.last_reopt_seconds * 1e3,
      static_cast<unsigned long long>(r.steady.inserts),
      static_cast<unsigned long long>(r.contended.inserts));
}

// --- Deterministic blocking-vs-background equivalence ------------------------

/// Applies one identical insert/delete stream to both instances (lockstep:
/// identical reservoir decisions and RNG draws on each side).
class LockstepStream {
 public:
  LockstepStream(uint64_t seed, uint64_t first_id, std::vector<uint64_t> live)
      : rng_(seed), next_id_(first_id), live_(std::move(live)) {}

  bool Apply(JanusAqp* a, JanusAqp* b, int ops, double delete_prob) {
    for (int i = 0; i < ops; ++i) {
      if (!live_.empty() && rng_.NextDouble() < delete_prob) {
        const size_t pick = static_cast<size_t>(rng_.Next() % live_.size());
        const uint64_t id = live_[pick];
        live_[pick] = live_.back();
        live_.pop_back();
        if (!a->Delete(id) || !b->Delete(id)) return false;
        continue;
      }
      Tuple t;
      t.id = next_id_++;
      t[0] = rng_.NextDouble();
      t[1] = rng_.Normal(10, 3);
      a->Insert(t);
      b->Insert(t);
    }
    return true;
  }

 private:
  Rng rng_;
  uint64_t next_id_;
  std::vector<uint64_t> live_;
};

bool EquivError(const char* what, double blocking, double background) {
  std::printf(
      "{\"bench\":\"reopt_latency\",\"error\":\"equivalence mismatch\","
      "\"what\":\"%s\",\"blocking\":%.17g,\"background\":%.17g}\n",
      what, blocking, background);
  return false;
}

/// Background pipeline with a mid-build update window (inserts, deletes,
/// reservoir resamples, delta tail) vs a blocking re-opt at the same stream
/// point. Counts must match bit-identically, FP aggregates to 1e-12.
bool EquivalenceCheck(uint64_t seed) {
  JanusOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 16;
  o.sample_rate = 0.02;
  o.catchup_rate = 0.10;
  // Triggers armed but silent (interval above any op count here): the only
  // evaluation is the manual CheckTriggers loop driving the blocking rebuild.
  o.enable_triggers = true;
  o.trigger_check_interval = 1u << 20;
  o.starvation_factor = 1e9;
  o.reopt_delta_tail = 16;
  o.seed = seed;
  JanusAqp blocking(o);
  JanusOptions bg_opts = o;
  bg_opts.reopt_mode = ReoptMode::kBackground;
  JanusAqp background(bg_opts);

  const GeneratedDataset ds =
      GenerateUniform(4000, 1, static_cast<int>(seed % 997));
  std::vector<uint64_t> live;
  for (const Tuple& t : ds.rows) live.push_back(t.id);
  for (JanusAqp* s : {&blocking, &background}) {
    s->LoadInitial(ds.rows);
    s->Initialize();
  }

  LockstepStream stream(seed + 1, 20000000, std::move(live));
  if (!stream.Apply(&blocking, &background, 600, 0.3)) {
    return EquivError("pre-pipeline stream", 0, 0);
  }

  // Point P: background opens the pipeline; blocking runs the full rebuild
  // inline. Both draw exactly one RNG value (the catch-up seed).
  if (!background.BeginBackgroundReopt()) return EquivError("begin", 0, 0);
  Tuple probe;
  probe.id = 999999999;
  probe[0] = 0.5;
  probe[1] = 0.0;
  bool fired = false;
  for (int i = 0; i < (1 << 21) && !fired; ++i) {
    fired = blocking.CheckTriggers(probe);
  }
  if (!fired) return EquivError("blocking trigger never fired", 0, 0);

  // Build window: delete-heavy (shrinks the reservoir past its lower bound,
  // forcing a mid-build resample), then the side build, then a delta tail
  // replayed inside the exclusive adoption step.
  if (!stream.Apply(&blocking, &background, 3000, 1.0)) {
    return EquivError("mid-build stream", 0, 0);
  }
  background.BuildBackgroundReopt();
  if (!stream.Apply(&blocking, &background, 100, 0.3)) {
    return EquivError("tail stream", 0, 0);
  }
  if (!background.FinishBackgroundReopt()) return EquivError("finish", 0, 0);
  if (!stream.Apply(&blocking, &background, 200, 0.3)) {
    return EquivError("post-adoption stream", 0, 0);
  }
  blocking.RunCatchupToGoal();
  background.RunCatchupToGoal();

  bool ok = true;
  Rng rng(seed + 77);
  const AggFunc funcs[] = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                           AggFunc::kMin, AggFunc::kMax};
  for (int round = 0; round < 25 && ok; ++round) {
    const double x = rng.NextDouble(), y = rng.NextDouble();
    for (AggFunc f : funcs) {
      AggQuery q;
      q.func = f;
      q.agg_column = 1;
      q.predicate_columns = {0};
      q.rect = Rectangle({std::min(x, y)}, {std::max(x, y)});
      const double ra = blocking.Query(q).estimate;
      const double rb = background.Query(q).estimate;
      if (f == AggFunc::kCount) {
        if (ra != rb) ok = EquivError("count", ra, rb);
      } else if (ra != rb) {
        const double denom = std::max({std::abs(ra), std::abs(rb), 1e-300});
        if (std::abs(ra - rb) / denom > 1e-12) ok = EquivError("agg", ra, rb);
      }
    }
  }
  return ok;
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows =
      static_cast<size_t>(std::max(args.GetInt("rows", 1000000), 10000));
  const double phase_seconds =
      std::max(args.GetDouble("seconds", 2.0), 0.25);
  const double update_rate =
      std::max(args.GetDouble("update_rate", 100000.0), 1000.0);
  const double qps = std::max(args.GetDouble("qps", 2000.0), 100.0);
  const uint64_t seed = args.GetUint64("seed", 2024);

  const janus::GeneratedDataset ds =
      janus::GenerateUniform(rows, 1, static_cast<int>(seed % 1000));
  const janus::ModeRun blocking =
      janus::RunMode("blocking", ds, phase_seconds, update_rate, qps, seed);
  janus::EmitMode("blocking", rows, blocking);
  const janus::ModeRun background =
      janus::RunMode("background", ds, phase_seconds, update_rate, qps,
                     seed);
  janus::EmitMode("background", rows, background);

  // Headline comparison (no "metric": context only). blocking_ratio is the
  // acceptance number — how much exclusive blocking time the pointer-swap
  // adoption saves per re-opt.
  const double bl = blocking.stats.last_blocking_seconds;
  const double bg = background.stats.last_blocking_seconds;
  std::printf(
      "{\"bench\":\"reopt_latency\",\"rows\":%zu,"
      "\"blocking_last_blocking_ms\":%.3f,"
      "\"background_last_blocking_ms\":%.3f,\"blocking_ratio\":%.1f,"
      "\"background_p99_over_steady\":%.2f}\n",
      rows, bl * 1e3, bg * 1e3, bg > 0 ? bl / bg : 0.0,
      background.steady.lat.p99_ms > 0
          ? background.contended.lat.p99_ms / background.steady.lat.p99_ms
          : 0.0);

  // Correctness gate: blocking and background must answer identically.
  return janus::EquivalenceCheck(seed) ? 0 : 1;
}
