// Figure 5 (right): re-optimization cost (seconds) of JanusAQP vs the DeepDB
// stand-in as ingest progresses 0.1 .. 0.9. JanusAQP's cost is the full
// re-initialization (optimize on the pooled sample + blocking populate +
// reservoir re-sample); the SPN's cost is a full re-train on a 10% sample —
// the paper's point is that learned synopses pay far more per refresh.

#include <cstdio>

#include "baselines/spn.h"
#include "bench/common.h"
#include "core/janus.h"

namespace janus {
namespace {

void Run(size_t rows) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 556);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kNycTaxi);

  JanusOptions opts;
  opts.spec.agg_column = tmpl.aggregate_column;
  opts.spec.predicate_columns = {tmpl.predicate_column};
  opts.num_leaves = 128;
  opts.sample_rate = 0.01;
  opts.catchup_rate = 0.10;
  opts.enable_triggers = false;
  JanusAqp system(opts);
  // DeepDB models the full table, not just the queried pair of columns;
  // the stand-in does the same so its training cost is comparable.
  std::vector<int> all_columns;
  for (int c = 0; c < ds.schema.num_columns(); ++c) all_columns.push_back(c);
  Spn spn(SpnOptions{}, all_columns);

  const size_t step = rows / 10;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(step));
  system.LoadInitial(historical);
  system.Initialize();
  system.RunCatchupToGoal();

  std::printf("%-10s %16s %20s %18s\n", "progress", "Janus reopt(s)",
              "Janus blocking(s)", "SPN retrain(s)");
  for (int decile = 1; decile <= 9; ++decile) {
    if (decile > 1) {
      const size_t lo = step * static_cast<size_t>(decile - 1);
      const size_t hi = step * static_cast<size_t>(decile);
      for (size_t i = lo; i < hi; ++i) system.Insert(ds.rows[i]);
    }
    system.Reinitialize();
    system.RunCatchupToGoal();

    std::vector<Tuple> live(
        ds.rows.begin(),
        ds.rows.begin() + static_cast<long>(step * decile));
    Rng rng(static_cast<uint64_t>(decile) * 3 + 1);
    std::vector<size_t> idx = rng.SampleIndices(live.size(), live.size() / 10);
    std::vector<Tuple> train;
    for (size_t i : idx) train.push_back(live[i]);
    spn.Train(train, live.size());

    std::printf("0.%d        %16.4f %20.4f %18.4f\n", decile,
                system.counters().last_reopt_seconds +
                    system.catchup_processing_seconds(),
                system.counters().last_blocking_seconds,
                spn.train_seconds());
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const size_t rows = janus::bench::FlagValue(argc, argv, "--rows", 200000);
  janus::bench::PrintHeader(
      "Figure 5 (right): re-optimization cost (s), JanusAQP vs DeepDB "
      "stand-in");
  janus::Run(rows);
  return 0;
}
