// Figure 5 (right): re-optimization cost (seconds) of JanusAQP vs the DeepDB
// stand-in as ingest progresses 0.1 .. 0.9. JanusAQP's cost is the full
// re-initialization (optimize on the pooled sample + blocking populate +
// reservoir re-sample); the SPN's cost is a full re-train on a 10% sample —
// the paper's point is that learned synopses pay far more per refresh.

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

void Run(size_t rows) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 556);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kNycTaxi);

  EngineConfig cfg = bench::DefaultConfig(tmpl);
  // DeepDB models the full table, not just the queried pair of columns;
  // the stand-in does the same so its training cost is comparable.
  for (int c = 0; c < ds.schema.num_columns(); ++c) {
    cfg.model_columns.push_back(c);
  }
  auto system = EngineRegistry::Create("janus", cfg);
  auto spn = EngineRegistry::Create("spn", cfg);

  const size_t step = rows / 10;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(step));
  system->LoadInitial(historical);
  spn->LoadInitial(historical);
  system->Initialize();
  system->RunCatchupToGoal();

  std::printf("%-10s %16s %20s %18s\n", "progress", "Janus reopt(s)",
              "Janus blocking(s)", "SPN retrain(s)");
  for (int decile = 1; decile <= 9; ++decile) {
    if (decile > 1) {
      const size_t lo = step * static_cast<size_t>(decile - 1);
      const size_t hi = step * static_cast<size_t>(decile);
      for (size_t i = lo; i < hi; ++i) {
        system->Insert(ds.rows[i]);
        spn->Insert(ds.rows[i]);
      }
    }
    system->Reinitialize();
    system->RunCatchupToGoal();
    spn->Reinitialize();

    const EngineStats js = system->Stats();
    const EngineStats ss = spn->Stats();
    std::printf("0.%d        %16.4f %20.4f %18.4f\n", decile,
                js.last_reopt_seconds + js.catchup_processing_seconds,
                js.last_blocking_seconds, ss.build_seconds);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 200000);
  janus::bench::PrintHeader(
      "Figure 5 (right): re-optimization cost (s), JanusAQP vs DeepDB "
      "stand-in");
  janus::Run(rows);
  return 0;
}
