// Figure 10: why re-partitioning matters (Sec. 6.8). Two scenarios that
// unbalance a frozen partition tree, DPT (no re-partitioning) vs JanusAQP
// (periodic / triggered re-partitioning):
//   Left:  skewed insertions — the NYC Taxi stream arrives sorted by
//          pickup time, so all new tuples hit the right-most partitions.
//   Right: skewed deletions — half the samples of 10% of the leaves are
//          deleted, then another 10% of data arrives.

#include <cstdio>
#include <memory>

#include "bench/common.h"

namespace janus {
namespace {

constexpr int kPickup = 0;
constexpr int kTimeOfDay = 5;
constexpr int kDistance = 2;

std::unique_ptr<AqpEngine> MakeSystem(const std::vector<Tuple>& historical,
                                      int predicate_column, bool triggers) {
  EngineConfig cfg;
  cfg.agg_column = kDistance;
  cfg.predicate_columns = {predicate_column};
  cfg.num_leaves = 128;
  cfg.sample_rate = 0.01;
  cfg.catchup_rate = 0.10;
  cfg.enable_triggers = triggers;
  cfg.trigger_check_interval = 64;
  auto system = EngineRegistry::Create("janus", cfg);
  system->LoadInitial(historical);
  system->Initialize();
  system->RunCatchupToGoal();
  return system;
}

void SkewedInsertions(size_t rows, size_t num_queries) {
  // NYC Taxi is already sorted by pickup time: streaming it in order makes
  // every insertion land at the right edge of the pickup-time domain.
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 1212);
  const size_t step = ds.rows.size() / 10;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(step));
  auto dpt_only = MakeSystem(historical, kPickup, /*triggers=*/false);
  auto janus_sys = MakeSystem(historical, kPickup, /*triggers=*/false);

  std::printf("%-10s %14s %14s   (skewed insertions)\n", "progress",
              "DPT(P95)", "Janus(P95)");
  for (int decile = 2; decile <= 9; ++decile) {
    const size_t lo = step * static_cast<size_t>(decile - 1);
    const size_t hi = step * static_cast<size_t>(decile);
    for (size_t i = lo; i < hi; ++i) {
      dpt_only->Insert(ds.rows[i]);
      janus_sys->Insert(ds.rows[i]);
    }
    // JanusAQP re-partitions after every 10% insertions (periodic trigger,
    // Sec. 5.4 "the user can choose to re-partition ... after tau updates").
    janus_sys->Reinitialize();
    janus_sys->RunCatchupToGoal();

    std::vector<Tuple> live(ds.rows.begin(),
                            ds.rows.begin() + static_cast<long>(hi));
    auto queries = bench::MakeWorkload(live, kPickup, kDistance, num_queries,
                                       AggFunc::kSum,
                                       41 + static_cast<uint64_t>(decile));
    const auto de = bench::EvaluateWorkload(*dpt_only, live, queries);
    const auto je = bench::EvaluateWorkload(*janus_sys, live, queries);
    std::printf("0.%d        %14.4f %14.4f\n", decile, de.p95, je.p95);
  }
}

void SkewedDeletions(size_t rows, size_t num_queries) {
  // Predicate = pickup time-of-day (uniformly shuffled across the stream).
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, rows, 1313);
  const size_t half = ds.rows.size() / 2;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(half));
  auto dpt_only = MakeSystem(historical, kTimeOfDay, /*triggers=*/false);
  auto janus_sys = MakeSystem(historical, kTimeOfDay, /*triggers=*/true);

  // Randomly pick 10% of the leaves and delete half the tuples in them.
  const Dpt* synopsis = janus_sys->synopsis();
  const auto& leaves = synopsis->tree().leaves;
  Rng rng(7);
  std::vector<int> chosen;
  for (int leaf : leaves) {
    if (rng.Bernoulli(0.1)) chosen.push_back(leaf);
  }
  std::vector<uint64_t> victims;
  for (const Tuple& t : historical) {
    for (int leaf : chosen) {
      if (synopsis->LeafRect(leaf).Contains(&t.values[kTimeOfDay])) {
        if (rng.Bernoulli(0.5)) victims.push_back(t.id);
        break;
      }
    }
  }
  std::vector<bool> dead(ds.rows.size(), false);
  for (uint64_t id : victims) {
    dpt_only->Delete(id);
    janus_sys->Delete(id);
    dead[id] = true;
  }
  // Then the next 10% of data arrives.
  const size_t next = half + ds.rows.size() / 10;
  for (size_t i = half; i < next; ++i) {
    dpt_only->Insert(ds.rows[i]);
    janus_sys->Insert(ds.rows[i]);
  }
  janus_sys->RunCatchupToGoal();

  std::vector<Tuple> live;
  for (size_t i = 0; i < next; ++i) {
    if (!dead[i]) live.push_back(ds.rows[i]);
  }
  auto queries = bench::MakeWorkload(live, kTimeOfDay, kDistance, num_queries,
                                     AggFunc::kSum, 43);
  const auto de = bench::EvaluateWorkload(*dpt_only, live, queries);
  const auto je = bench::EvaluateWorkload(*janus_sys, live, queries);
  const EngineStats js = janus_sys->Stats();
  std::printf("\n%-24s %14s %14s   (skewed deletions)\n", " ", "DPT(P95)",
              "Janus(P95)");
  std::printf("after skewed deletes    %14.4f %14.4f   (Janus re-partitions:"
              " %lu full, %lu partial)\n",
              de.p95, je.p95, static_cast<unsigned long>(js.repartitions),
              static_cast<unsigned long>(js.partial_repartitions));
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 60000);
  const size_t queries = args.GetSize("queries", 200);
  janus::bench::PrintHeader(
      "Figure 10: re-partitioning under skewed insertions / deletions");
  janus::SkewedInsertions(rows, queries);
  janus::SkewedDeletions(rows, queries);
  return 0;
}
