// Snapshot persistence throughput: how fast an engine's complete state goes
// to disk and comes back, and how fast a recovered engine replays a broker
// stream tail. Emits one JSON line per metric so CI can track regressions:
//   {"bench":"persist","metric":"save",...,"rows_per_sec":...,"bytes":...}
//   {"bench":"persist","metric":"load",...}
//   {"bench":"persist","metric":"load_replay",...,"replayed":...}
//
// The binary doubles as the CI recovery smoke: "mode=save" builds an engine,
// snapshots it and prints a fixed workload's answers; "mode=load" (a fresh
// process — the "kill" between the two invocations) restores the snapshot
// and prints the same workload's answers. Identical output == recovery
// verified across a real process boundary.
//
// Usage:
//   bench_persist rows=1000000 engine=janus replay=100000
//   bench_persist mode=save path=snap.bin rows=50000   > answers_a.txt
//   bench_persist mode=load path=snap.bin rows=50000   > answers_b.txt

#include <sys/stat.h>

#include <cstdio>

#include "api/driver.h"
#include "bench/common.h"
#include "persist/snapshot.h"
#include "stream/broker.h"
#include "util/timer.h"

namespace janus {
namespace {

size_t FileBytes(const std::string& path) {
  struct stat st{};
  return stat(path.c_str(), &st) == 0 ? static_cast<size_t>(st.st_size) : 0;
}

EngineConfig ConfigFrom(const ArgMap& args, const GeneratedDataset& ds) {
  EngineConfig cfg =
      EngineConfig::FromArgs(args, {"mode", "path", "replay", "rows"});
  cfg.schema = ds.schema;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.enable_triggers = false;
  return cfg;
}

std::vector<AggQuery> FixedWorkload() {
  std::vector<AggQuery> out;
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
    for (int i = 0; i < 8; ++i) {
      AggQuery q;
      q.func = f;
      q.agg_column = 1;
      q.predicate_columns = {0};
      q.rect = Rectangle({0.09 * i}, {0.09 * i + 0.25});
      out.push_back(q);
    }
  }
  return out;
}

void PrintAnswers(AqpEngine* engine) {
  const auto queries = FixedWorkload();
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult r = engine->Query(queries[i]);
    // %.17g round-trips doubles exactly: byte-identical lines across the
    // save and load processes mean bit-identical recovery.
    std::printf(
        "{\"bench\":\"persist\",\"metric\":\"answer\",\"i\":%zu,"
        "\"estimate\":\"%.17g\",\"ci\":\"%.17g\"}\n",
        i, r.estimate, r.ci_half_width);
  }
}

int RunSmoke(const ArgMap& args, const std::string& mode) {
  const size_t rows = args.GetSize("rows", 50000);
  const uint64_t seed = args.GetUint64("seed", 42);
  const std::string path = args.GetString("path", "bench_persist.snap");
  auto ds = GenerateUniform(rows, 1, seed);
  const EngineConfig cfg = ConfigFrom(args, ds);
  auto engine = EngineRegistry::Create(cfg.engine, cfg);
  if (mode == "save") {
    engine->LoadInitial(ds.rows);
    engine->Initialize();
    engine->RunCatchupToGoal();
    engine->Save(path);
  } else {
    try {
      engine->Load(path);
    } catch (const persist::PersistError& e) {
      std::printf("{\"bench\":\"persist\",\"error\":\"%s\"}\n", e.what());
      return 1;
    }
  }
  PrintAnswers(engine.get());
  return 0;
}

void RunBench(const ArgMap& args) {
  const size_t rows = args.GetSize("rows", 1000000);
  const size_t replay = args.GetSize("replay", 100000);
  const uint64_t seed = args.GetUint64("seed", 42);
  const std::string path = args.GetString("path", "bench_persist.snap");

  auto ds = GenerateUniform(rows, 1, seed);
  const EngineConfig cfg = ConfigFrom(args, ds);
  auto engine = EngineRegistry::Create(cfg.engine, cfg);
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  // The replay tail lives in the broker up front so the stream cost is not
  // billed to the recovery path.
  Broker broker;
  broker.insert_topic()->set_poll_overhead_ns(0);
  {
    Rng rng(seed + 1);
    std::vector<Tuple> fresh;
    fresh.reserve(replay);
    for (size_t i = 0; i < replay; ++i) {
      Tuple t;
      t.id = 10000000 + i;
      t[0] = rng.NextDouble();
      t[1] = rng.Normal(10, 2);
      fresh.push_back(t);
    }
    broker.insert_topic()->AppendBatch(fresh);
  }
  EngineDriver driver(engine.get(), &broker);

  // Snapshot write throughput (engine state at `rows` archived tuples).
  Timer timer;
  driver.SaveSnapshot(path);
  const double save_s = timer.ElapsedSeconds();
  const size_t bytes = FileBytes(path);
  std::printf(
      "{\"bench\":\"persist\",\"metric\":\"save\",\"engine\":\"%s\","
      "\"rows\":%zu,\"bytes\":%zu,\"seconds\":%.4f,\"rows_per_sec\":%.0f,"
      "\"mb_per_sec\":%.1f}\n",
      cfg.engine.c_str(), rows, bytes, save_s,
      static_cast<double>(rows) / save_s,
      static_cast<double>(bytes) / 1e6 / save_s);

  // Cold load throughput.
  auto restored = EngineRegistry::Create(cfg.engine, cfg);
  EngineDriver rdriver(restored.get(), &broker);
  timer.Reset();
  rdriver.LoadSnapshot(path);
  const double load_s = timer.ElapsedSeconds();
  std::printf(
      "{\"bench\":\"persist\",\"metric\":\"load\",\"engine\":\"%s\","
      "\"rows\":%zu,\"bytes\":%zu,\"seconds\":%.4f,\"rows_per_sec\":%.0f,"
      "\"mb_per_sec\":%.1f}\n",
      cfg.engine.c_str(), rows, bytes, load_s,
      static_cast<double>(rows) / load_s,
      static_cast<double>(bytes) / 1e6 / load_s);

  // Load + replay: the full recovery path back to stream head.
  timer.Reset();
  const size_t replayed = rdriver.Drain();
  const double replay_s = timer.ElapsedSeconds();
  std::printf(
      "{\"bench\":\"persist\",\"metric\":\"load_replay\",\"engine\":\"%s\","
      "\"rows\":%zu,\"replayed\":%zu,\"seconds\":%.4f,"
      "\"replay_rows_per_sec\":%.0f,\"recovery_seconds\":%.4f}\n",
      cfg.engine.c_str(), rows, replayed, replay_s,
      replay_s > 0 ? static_cast<double>(replayed) / replay_s : 0.0,
      load_s + replay_s);

  // Sanity: the recovered-and-caught-up engine sees the whole stream.
  driver.Drain();
  const EngineStats sa = engine->Stats();
  const EngineStats sb = restored->Stats();
  if (sa.rows != sb.rows) {
    std::printf(
        "{\"bench\":\"persist\",\"error\":\"recovered rows %zu != %zu\"}\n",
        sb.rows, sa.rows);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const std::string mode = args.GetString("mode", "bench");
  if (mode == "save" || mode == "load") {
    return janus::RunSmoke(args, mode);
  }
  janus::RunBench(args);
  return 0;
}
