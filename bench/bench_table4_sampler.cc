// Table 4 (Appendix A): sampling 1M tuples from a Kafka-like topic with
// different poll sizes. pollSize = 1 is the singleton sampler (1M polls);
// larger poll sizes are sequential samplers that transfer the whole topic
// but amortize the per-poll overhead. The table reports total time, ms/poll
// and the "equivalent singleton sample rate" above which the sequential
// sampler wins.

#include <cstdio>

#include "bench/common.h"
#include "stream/broker.h"
#include "stream/samplers.h"

namespace janus {
namespace {

void Run(size_t topic_rows, size_t sample_target, uint64_t overhead_ns) {
  Topic topic("archive", overhead_ns);
  {
    auto ds = GenerateUniform(topic_rows, 1, 42);
    topic.AppendBatch(ds.rows);
  }
  std::printf("%-10s %12s %12s %12s %22s\n", "pollSize", "nPolls",
              "total(ms)", "ms/poll", "EquivSingletonSR");

  // Singleton sampler: draw `sample_target` tuples one poll each.
  double singleton_ms_per_tuple = 0;
  {
    SingletonSampler sampler(&topic, 1);
    SamplerStats stats;
    sampler.Sample(sample_target, &stats);
    singleton_ms_per_tuple = stats.seconds * 1e3 /
                             static_cast<double>(sample_target);
    std::printf("%-10d %12zu %12.0f %12.4f %22s\n", 1, stats.polls,
                stats.seconds * 1e3,
                stats.seconds * 1e3 / static_cast<double>(stats.polls), "-");
  }

  // Sequential samplers with growing poll sizes.
  for (size_t poll_size : {10u, 100u, 1000u, 10000u, 100000u}) {
    SequentialSampler sampler(&topic, poll_size, poll_size);
    SamplerStats stats;
    sampler.Sample(sample_target, &stats);
    // Sample rate above which the singleton sampler takes longer than this
    // full sequential pass.
    const double equiv_rate =
        (stats.seconds * 1e3) /
        (singleton_ms_per_tuple * static_cast<double>(topic_rows));
    std::printf("%-10zu %12zu %12.0f %12.4f %22.4f\n", poll_size, stats.polls,
                stats.seconds * 1e3,
                stats.seconds * 1e3 / static_cast<double>(stats.polls),
                equiv_rate);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 1000000);
  const size_t target = args.GetSize("sample", 1000000);
  const uint64_t overhead = args.GetUint64("poll-overhead-ns", 2000);
  janus::bench::PrintHeader(
      "Table 4 (Appendix A): broker samplers — singleton vs sequential");
  janus::Run(rows, target, overhead);
  return 0;
}
