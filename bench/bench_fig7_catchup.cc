// Figure 7: the catch-up phase. Left: P95 relative error of
// JanusAQP(128, c, 1%) as the catch-up goal c sweeps 1%..10%, with the RS 1%
// baseline as reference. Right: catch-up overhead split into data *loading*
// (broker polls + transfer) and *processing* (statistics absorption).

#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "stream/broker.h"
#include "stream/samplers.h"

namespace janus {
namespace {

void Run(size_t rows, size_t num_queries) {
  auto ds = GenerateDataset(DatasetKind::kIntelWireless, rows, 888);
  const DefaultTemplate tmpl = DefaultTemplateFor(DatasetKind::kIntelWireless);
  const EngineConfig base = bench::DefaultConfig(tmpl);

  // RS reference at 1%.
  auto rs = EngineRegistry::Create("rs", base);
  rs->LoadInitial(ds.rows);
  rs->Initialize();

  auto queries = bench::MakeWorkload(ds.rows, tmpl.predicate_column,
                                     tmpl.aggregate_column, num_queries,
                                     AggFunc::kSum, 13);
  const auto rs_stats = bench::EvaluateWorkload(*rs, ds.rows, queries);

  // A broker topic holding the archive, for the loading-cost measurement.
  // The per-poll overhead models a real broker round trip (network + batch
  // framing, ~200us); without it an in-process topic would make loading
  // look free, hiding the paper's observation that loading dominates
  // processing (Sec. 6.5.2).
  Broker broker;
  Topic* archive = broker.GetTopic("archive");
  archive->set_poll_overhead_ns(200000);
  archive->AppendBatch(ds.rows);

  std::printf("%-10s %16s %14s %14s %16s\n", "catchup", "JanusP95", "RSP95",
              "loading(s)", "processing(s)");
  for (int c = 1; c <= 10; ++c) {
    EngineConfig cfg = base;
    cfg.catchup_rate = c / 100.0;
    auto system = EngineRegistry::Create("janus", cfg);
    system->LoadInitial(ds.rows);
    system->Initialize();
    system->RunCatchupToGoal();
    const auto je = bench::EvaluateWorkload(*system, ds.rows, queries);

    // Loading cost: pull the same number of catch-up samples through the
    // broker with a sequential sampler (the cheaper option at >= 10%,
    // Appendix A).
    const EngineStats stats = system->Stats();
    SamplerStats load_stats;
    SequentialSampler loader(archive, 1024, static_cast<uint64_t>(c));
    loader.Sample(stats.catchup_processed, &load_stats);

    std::printf("%d%%        %16.4f %14.4f %14.3f %16.3f\n", c, je.p95,
                rs_stats.p95, load_stats.seconds,
                stats.catchup_processing_seconds);
  }
}

}  // namespace
}  // namespace janus

int main(int argc, char** argv) {
  const janus::ArgMap args(argc, argv);
  const size_t rows = args.GetSize("rows", 150000);
  const size_t queries = args.GetSize("queries", 300);
  janus::bench::PrintHeader(
      "Figure 7: catch-up goal sweep — accuracy (left) and "
      "loading/processing cost (right)");
  janus::Run(rows, queries);
  return 0;
}
